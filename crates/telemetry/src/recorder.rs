//! Recorders and the `Sink` handle the instrumented layers hold.
//!
//! The [`Sink`] is the cheap, clonable handle threaded through the machine,
//! controllers, and tiering systems. Disabled (the default) it is a `None`
//! and every emit is a branch on that option — the payload-building closure
//! is never called, so the hot path does no allocation or formatting.
//! Enabled, it shares one [`Recorder`] plus a "current sim time" cell the
//! machine refreshes each tick so layers without their own clock (the
//! Colloid controller, the retry queue) can stamp events.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use simkit::SimTime;

use crate::event::{Event, EventKind, Source};
use crate::metrics::TickMetrics;
use crate::span::{SpanId, SpanKind, SpanPayload, SpanRecord};

/// Destination for events, metric rows, and spans.
///
/// Implementations must be passive: recording must not mutate simulation
/// state or draw randomness, so enabling a recorder never changes a run.
/// The span methods default to no-ops so pre-span recorders keep working.
pub trait Recorder {
    /// Record one event (may drop it, e.g. when a ring is full).
    fn record_event(&mut self, ev: Event);
    /// Record one per-quantum metric row.
    fn record_metrics(&mut self, m: TickMetrics);
    /// Snapshot of retained events, oldest first.
    fn events(&self) -> Vec<Event>;
    /// Snapshot of retained metric rows, oldest first.
    fn metrics(&self) -> Vec<TickMetrics>;
    /// How many events were discarded to stay within bounds.
    fn dropped_events(&self) -> u64 {
        0
    }
    /// How many metric rows were discarded to stay within bounds.
    fn dropped_metrics(&self) -> u64 {
        0
    }
    /// Record one completed span (spans arrive in close order).
    fn record_span(&mut self, sp: SpanRecord) {
        let _ = sp;
    }
    /// Snapshot of retained spans, in close order.
    fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
    /// How many spans were discarded to stay within bounds.
    fn dropped_spans(&self) -> u64 {
        0
    }
}

/// Discards everything. Used by the bit-identity tests to prove that an
/// *enabled* sink still changes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_event(&mut self, _ev: Event) {}
    fn record_metrics(&mut self, _m: TickMetrics) {}
    fn events(&self) -> Vec<Event> {
        Vec::new()
    }
    fn metrics(&self) -> Vec<TickMetrics> {
        Vec::new()
    }
}

/// Bounded in-memory recorder: keeps the most recent `event_cap` events and
/// `metric_cap` metric rows, dropping the oldest on overflow. Memory use is
/// proportional to the caps, never to run length.
///
/// Timestamps are clamped monotone **per source**: a source whose event
/// arrives stamped earlier than its previous event is recorded at the
/// previous stamp (sim layers emit in causal order, so in practice the
/// clamp only defends against a stale shared clock at tick boundaries).
#[derive(Debug)]
pub struct RingRecorder {
    event_cap: usize,
    metric_cap: usize,
    span_cap: usize,
    events: VecDeque<Event>,
    metrics: VecDeque<TickMetrics>,
    spans: VecDeque<SpanRecord>,
    dropped_events: u64,
    dropped_metrics: u64,
    dropped_spans: u64,
    last_t: [SimTime; Source::COUNT],
}

impl RingRecorder {
    /// A ring retaining at most `event_cap` events and `metric_cap` rows.
    /// Caps of zero retain nothing (everything counts as dropped). The
    /// span ring defaults to `event_cap` (spans and events accumulate at
    /// comparable rates); override with [`RingRecorder::with_span_cap`].
    pub fn new(event_cap: usize, metric_cap: usize) -> Self {
        RingRecorder {
            event_cap,
            metric_cap,
            span_cap: event_cap,
            events: VecDeque::new(),
            metrics: VecDeque::new(),
            spans: VecDeque::new(),
            dropped_events: 0,
            dropped_metrics: 0,
            dropped_spans: 0,
            last_t: [SimTime::ZERO; Source::COUNT],
        }
    }

    /// Overrides the span-ring capacity.
    pub fn with_span_cap(mut self, span_cap: usize) -> Self {
        self.span_cap = span_cap;
        self
    }

    /// Retained event count.
    pub fn event_len(&self) -> usize {
        self.events.len()
    }

    /// Retained metric-row count.
    pub fn metric_len(&self) -> usize {
        self.metrics.len()
    }

    /// Retained span count.
    pub fn span_len(&self) -> usize {
        self.spans.len()
    }
}

impl Recorder for RingRecorder {
    fn record_event(&mut self, mut ev: Event) {
        if self.event_cap == 0 {
            self.dropped_events += 1;
            return;
        }
        let slot = &mut self.last_t[ev.source.index()];
        if ev.t < *slot {
            ev.t = *slot;
        } else {
            *slot = ev.t;
        }
        if self.events.len() == self.event_cap {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(ev);
    }

    fn record_metrics(&mut self, m: TickMetrics) {
        if self.metric_cap == 0 {
            self.dropped_metrics += 1;
            return;
        }
        if self.metrics.len() == self.metric_cap {
            self.metrics.pop_front();
            self.dropped_metrics += 1;
        }
        self.metrics.push_back(m);
    }

    fn events(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    fn metrics(&self) -> Vec<TickMetrics> {
        self.metrics.iter().cloned().collect()
    }

    fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    fn dropped_metrics(&self) -> u64 {
        self.dropped_metrics
    }

    fn record_span(&mut self, sp: SpanRecord) {
        if self.span_cap == 0 {
            self.dropped_spans += 1;
            return;
        }
        if self.spans.len() == self.span_cap {
            self.spans.pop_front();
            self.dropped_spans += 1;
        }
        self.spans.push_back(sp);
    }

    fn spans(&self) -> Vec<SpanRecord> {
        self.spans.iter().cloned().collect()
    }

    fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }
}

/// A span that has been opened but not yet closed.
struct OpenSpan {
    id: SpanId,
    parent: SpanId,
    cause: SpanId,
    source: Source,
    name: &'static str,
    payload: SpanPayload,
    t_start: SimTime,
}

impl OpenSpan {
    fn close(self, t_end: SimTime, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            id: self.id,
            parent: self.parent,
            cause: self.cause,
            source: self.source,
            name: self.name,
            payload: self.payload,
            t_start: self.t_start,
            // Defensive clamp: a span can never close before it opened.
            t_end: t_end.max(self.t_start),
            kind,
        }
    }
}

/// Mutable span state shared by all clones of one sink: the scoped-span
/// stack, the open async extents, the id counter, and the current cause.
#[derive(Default)]
struct SpanState {
    next_id: u64,
    stack: Vec<OpenSpan>,
    open_async: Vec<OpenSpan>,
}

impl SpanState {
    fn fresh_id(&mut self) -> SpanId {
        self.next_id += 1;
        SpanId(self.next_id)
    }
}

struct SinkShared {
    rec: RefCell<Box<dyn Recorder>>,
    now: Cell<SimTime>,
    spans: RefCell<SpanState>,
    cause: Cell<SpanId>,
}

/// Clonable handle to a shared [`Recorder`], or nothing at all.
///
/// All clones of one enabled sink share the recorder and the current-time
/// cell, so the machine (which knows the time) and the controllers (which
/// don't) stamp into the same stream.
#[derive(Clone, Default)]
pub struct Sink {
    inner: Option<Rc<SinkShared>>,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Sink(disabled)"),
            Some(sh) => write!(f, "Sink(enabled, now={:?})", sh.now.get()),
        }
    }
}

impl Sink {
    /// The zero-cost disabled sink (also `Sink::default()`).
    pub fn disabled() -> Self {
        Sink { inner: None }
    }

    /// An enabled sink writing into `rec`.
    pub fn new(rec: Box<dyn Recorder>) -> Self {
        Sink {
            inner: Some(Rc::new(SinkShared {
                rec: RefCell::new(rec),
                now: Cell::new(SimTime::ZERO),
                spans: RefCell::new(SpanState::default()),
                cause: Cell::new(SpanId::NONE),
            })),
        }
    }

    /// Convenience: an enabled sink backed by a fresh [`RingRecorder`].
    pub fn ring(event_cap: usize, metric_cap: usize) -> Self {
        Sink::new(Box::new(RingRecorder::new(event_cap, metric_cap)))
    }

    /// Whether emits go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Refresh the shared clock (the machine calls this each tick with the
    /// tick's end time, so clock-less layers stamp at quantum granularity).
    pub fn set_now(&self, t: SimTime) {
        if let Some(sh) = &self.inner {
            sh.now.set(t);
        }
    }

    /// The shared clock's current value (ZERO when disabled).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Some(sh) => sh.now.get(),
            None => SimTime::ZERO,
        }
    }

    /// Emit an event stamped with the shared clock. The closure runs only
    /// when the sink is enabled — build the payload inside it.
    pub fn emit(&self, source: Source, kind: impl FnOnce() -> EventKind) {
        if let Some(sh) = &self.inner {
            let ev = Event {
                t: sh.now.get(),
                source,
                kind: kind(),
            };
            sh.rec.borrow_mut().record_event(ev);
        }
    }

    /// Emit an event at an explicit simulated time (for layers that know
    /// exactly when something happened, like the migration engine).
    pub fn emit_at(&self, t: SimTime, source: Source, kind: impl FnOnce() -> EventKind) {
        if let Some(sh) = &self.inner {
            let ev = Event {
                t,
                source,
                kind: kind(),
            };
            sh.rec.borrow_mut().record_event(ev);
        }
    }

    /// Record a metric row. The closure runs only when enabled.
    pub fn metrics(&self, m: impl FnOnce() -> TickMetrics) {
        if let Some(sh) = &self.inner {
            let row = m();
            sh.rec.borrow_mut().record_metrics(row);
        }
    }

    /// Run `f` against the recorder (e.g. to snapshot events at run end).
    /// Returns `None` when the sink is disabled.
    pub fn with<R>(&self, f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|sh| f(sh.rec.borrow().as_ref() as &dyn Recorder))
    }

    // ---- Spans -----------------------------------------------------------

    /// Opens a scoped span on the span stack at the shared clock's time.
    /// Returns `SpanId::NONE` (and does nothing) when disabled. Close with
    /// [`Sink::span_exit`] in LIFO order.
    pub fn span_enter(&self, source: Source, name: &'static str) -> SpanId {
        self.span_enter_at(self.now(), source, name)
    }

    /// Opens a scoped span at an explicit simulated time.
    pub fn span_enter_at(&self, t: SimTime, source: Source, name: &'static str) -> SpanId {
        let Some(sh) = &self.inner else {
            return SpanId::NONE;
        };
        let mut st = sh.spans.borrow_mut();
        let id = st.fresh_id();
        let parent = st.stack.last().map_or(SpanId::NONE, |s| s.id);
        st.stack.push(OpenSpan {
            id,
            parent,
            cause: SpanId::NONE,
            source,
            name,
            payload: SpanPayload::None,
            t_start: t,
        });
        id
    }

    /// Closes a scoped span at the shared clock's time.
    pub fn span_exit(&self, id: SpanId) {
        self.span_exit_at(self.now(), id);
    }

    /// Closes a scoped span at an explicit time. Children left open above
    /// `id` on the stack are closed at the same stamp (defensive: the
    /// recorded tree stays well-nested even if a caller forgets an exit).
    /// A `NONE` or unknown id is a no-op.
    pub fn span_exit_at(&self, t: SimTime, id: SpanId) {
        let Some(sh) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut st = sh.spans.borrow_mut();
        if !st.stack.iter().any(|s| s.id == id) {
            return;
        }
        let mut rec = sh.rec.borrow_mut();
        while let Some(open) = st.stack.pop() {
            let done = open.id == id;
            rec.record_span(open.close(t, SpanKind::Scoped));
            if done {
                break;
            }
        }
    }

    /// Records an instant decision span (zero duration, recorded
    /// immediately, parented under the current stack top) and makes it the
    /// sink's current cause: until the next decision, migrations enqueued
    /// anywhere in the stack are attributed to it. Returns its id.
    pub fn span_decision(&self, source: Source, name: &'static str, mode: &'static str) -> SpanId {
        let Some(sh) = &self.inner else {
            return SpanId::NONE;
        };
        let t = sh.now.get();
        let mut st = sh.spans.borrow_mut();
        let id = st.fresh_id();
        let parent = st.stack.last().map_or(SpanId::NONE, |s| s.id);
        let sp = OpenSpan {
            id,
            parent,
            // A decision issued while another decision is in force (e.g. a
            // retry drain during a colloid quantum) chains back to it.
            cause: sh.cause.get(),
            source,
            name,
            payload: SpanPayload::Decision { mode },
            t_start: t,
        };
        sh.rec
            .borrow_mut()
            .record_span(sp.close(t, SpanKind::Scoped));
        sh.cause.set(id);
        id
    }

    /// The current cause (the most recent decision span), `NONE` when
    /// disabled or before any decision.
    pub fn cause(&self) -> SpanId {
        match &self.inner {
            Some(sh) => sh.cause.get(),
            None => SpanId::NONE,
        }
    }

    /// Overrides the current cause (save/restore around nested issuers
    /// like the retry queue; `set_cause(sink.cause())` round-trips).
    pub fn set_cause(&self, cause: SpanId) {
        if let Some(sh) = &self.inner {
            sh.cause.set(cause);
        }
    }

    /// Opens an async span (an extent that may outlive the current scope,
    /// e.g. a page copy crossing tick boundaries) at an explicit time,
    /// attributed to `cause`. Close with [`Sink::span_close_at`].
    pub fn span_open_at(
        &self,
        t: SimTime,
        source: Source,
        name: &'static str,
        payload: SpanPayload,
        cause: SpanId,
    ) -> SpanId {
        let Some(sh) = &self.inner else {
            return SpanId::NONE;
        };
        let mut st = sh.spans.borrow_mut();
        let id = st.fresh_id();
        let parent = st.stack.last().map_or(SpanId::NONE, |s| s.id);
        st.open_async.push(OpenSpan {
            id,
            parent,
            cause,
            source,
            name,
            payload,
            t_start: t,
        });
        id
    }

    /// Closes an async span at an explicit time. A `NONE` or unknown id is
    /// a no-op.
    pub fn span_close_at(&self, t: SimTime, id: SpanId) {
        let Some(sh) = &self.inner else { return };
        if id.is_none() {
            return;
        }
        let mut st = sh.spans.borrow_mut();
        if let Some(i) = st.open_async.iter().position(|s| s.id == id) {
            let open = st.open_async.swap_remove(i);
            sh.rec
                .borrow_mut()
                .record_span(open.close(t, SpanKind::Async));
        }
    }

    /// Spans currently open (stack + async extents). Diagnostic only.
    pub fn open_spans(&self) -> usize {
        match &self.inner {
            Some(sh) => {
                let st = sh.spans.borrow();
                st.stack.len() + st.open_async.len()
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ps: u64, source: Source) -> Event {
        Event {
            t: SimTime::from_ps(t_ps),
            source,
            kind: EventKind::EquilibriumReset,
        }
    }

    #[test]
    fn disabled_sink_never_runs_closures() {
        let sink = Sink::disabled();
        sink.emit(Source::Machine, || panic!("must not build payload"));
        sink.metrics(|| panic!("must not build row"));
        assert!(!sink.is_enabled());
        assert!(sink.with(|_| ()).is_none());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = RingRecorder::new(3, 2);
        for i in 0..5 {
            r.record_event(ev(i, Source::Machine));
        }
        assert_eq!(r.event_len(), 3);
        assert_eq!(r.dropped_events(), 2);
        let kept: Vec<u64> = r.events().iter().map(|e| e.t.as_ps()).collect();
        assert_eq!(kept, vec![2, 3, 4]);

        for t in 0..4u64 {
            r.record_metrics(TickMetrics::at(SimTime::from_ps(t)));
        }
        assert_eq!(r.metric_len(), 2);
        assert_eq!(r.dropped_metrics(), 2);
    }

    #[test]
    fn zero_cap_retains_nothing() {
        let mut r = RingRecorder::new(0, 0);
        r.record_event(ev(1, Source::Machine));
        r.record_metrics(TickMetrics::at(SimTime::ZERO));
        assert!(r.events().is_empty());
        assert!(r.metrics().is_empty());
        assert_eq!(r.dropped_events(), 1);
        assert_eq!(r.dropped_metrics(), 1);
    }

    #[test]
    fn per_source_timestamps_clamped_monotone() {
        let mut r = RingRecorder::new(16, 0);
        r.record_event(ev(100, Source::Colloid));
        r.record_event(ev(50, Source::Colloid)); // stale clock: clamps to 100
        r.record_event(ev(70, Source::Machine)); // other source unaffected
        r.record_event(ev(120, Source::Colloid));
        let ts: Vec<(usize, u64)> = r
            .events()
            .iter()
            .map(|e| (e.source.index(), e.t.as_ps()))
            .collect();
        assert_eq!(
            ts,
            vec![
                (Source::Colloid.index(), 100),
                (Source::Colloid.index(), 100),
                (Source::Machine.index(), 70),
                (Source::Colloid.index(), 120),
            ]
        );
    }

    #[test]
    fn sink_clones_share_recorder_and_clock() {
        let sink = Sink::ring(8, 8);
        let clone = sink.clone();
        sink.set_now(SimTime::from_ps(42));
        assert_eq!(clone.now().as_ps(), 42);
        clone.emit(Source::Runner, || EventKind::EquilibriumReset);
        sink.emit_at(SimTime::from_ps(7), Source::Machine, || {
            EventKind::TierEvacuation { pages: 3 }
        });
        let events = sink.with(|r| r.events()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t.as_ps(), 42);
        assert_eq!(events[0].source, Source::Runner);
        assert_eq!(events[1].t.as_ps(), 7);
    }

    #[test]
    fn disabled_sink_span_api_is_inert() {
        let sink = Sink::disabled();
        let id = sink.span_enter(Source::Machine, "tick");
        assert!(id.is_none());
        sink.span_exit(id);
        let d = sink.span_decision(Source::Colloid, "decide", "promote");
        assert!(d.is_none());
        assert!(sink.cause().is_none());
        let a = sink.span_open_at(
            SimTime::from_ns(1.0),
            Source::Machine,
            "migration",
            SpanPayload::Migration {
                vpn: 1,
                src: 0,
                dst: 1,
            },
            SpanId::NONE,
        );
        assert!(a.is_none());
        sink.span_close_at(SimTime::from_ns(2.0), a);
        assert_eq!(sink.open_spans(), 0);
    }

    #[test]
    fn scoped_spans_nest_and_record_on_close() {
        let sink = Sink::ring(16, 0);
        sink.set_now(SimTime::from_ns(10.0));
        let outer = sink.span_enter(Source::Runner, "runner.tick");
        sink.set_now(SimTime::from_ns(11.0));
        let inner = sink.span_enter(Source::Machine, "machine.tick");
        sink.set_now(SimTime::from_ns(20.0));
        sink.span_exit(inner);
        sink.set_now(SimTime::from_ns(21.0));
        sink.span_exit(outer);
        let spans = sink.with(|r| r.spans()).unwrap();
        assert_eq!(spans.len(), 2);
        // Children close (and so record) before parents.
        assert_eq!(spans[0].name, "machine.tick");
        assert_eq!(spans[0].parent, outer);
        assert_eq!(spans[1].name, "runner.tick");
        assert_eq!(spans[1].parent, SpanId::NONE);
        assert!(spans[0].t_start >= spans[1].t_start);
        assert!(spans[0].t_end <= spans[1].t_end);
    }

    #[test]
    fn exiting_parent_closes_forgotten_children() {
        let sink = Sink::ring(16, 0);
        let outer = sink.span_enter(Source::Runner, "outer");
        let _leaked = sink.span_enter(Source::Runner, "leaked");
        sink.set_now(SimTime::from_ns(5.0));
        sink.span_exit(outer);
        let spans = sink.with(|r| r.spans()).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "leaked");
        assert_eq!(spans[0].t_end, SimTime::from_ns(5.0));
        assert_eq!(sink.open_spans(), 0);
        // Unknown ids are no-ops.
        sink.span_exit(SpanId(999));
        assert_eq!(sink.with(|r| r.spans().len()).unwrap(), 2);
    }

    #[test]
    fn async_spans_cross_scopes_and_carry_causes() {
        let sink = Sink::ring(16, 0);
        let d = sink.span_decision(Source::Colloid, "colloid.decide", "demote");
        assert_eq!(sink.cause(), d);
        let tick1 = sink.span_enter(Source::Machine, "machine.tick");
        let mig = sink.span_open_at(
            SimTime::from_ns(1.0),
            Source::Machine,
            "migration",
            SpanPayload::Migration {
                vpn: 42,
                src: 0,
                dst: 1,
            },
            sink.cause(),
        );
        sink.span_exit(tick1);
        let tick2 = sink.span_enter(Source::Machine, "machine.tick");
        sink.span_close_at(SimTime::from_ns(9.0), mig);
        sink.span_exit(tick2);
        let spans = sink.with(|r| r.spans()).unwrap();
        let m = spans.iter().find(|s| s.name == "migration").unwrap();
        assert_eq!(m.kind, SpanKind::Async);
        assert_eq!(m.cause, d);
        assert_eq!(m.parent, tick1);
        assert_eq!(m.t_end, SimTime::from_ns(9.0));
        assert_eq!(
            m.payload,
            SpanPayload::Migration {
                vpn: 42,
                src: 0,
                dst: 1,
            }
        );
        // The decision was recorded instantly, as a decision.
        assert!(spans[0].payload.is_decision());
    }

    #[test]
    fn span_ring_bounds_memory() {
        let mut r = RingRecorder::new(4, 0).with_span_cap(2);
        for i in 1..=5u64 {
            r.record_span(SpanRecord {
                id: SpanId(i),
                parent: SpanId::NONE,
                cause: SpanId::NONE,
                source: Source::Machine,
                name: "s",
                payload: SpanPayload::None,
                t_start: SimTime::ZERO,
                t_end: SimTime::ZERO,
                kind: SpanKind::Scoped,
            });
        }
        assert_eq!(r.span_len(), 2);
        assert_eq!(r.dropped_spans(), 3);
        let ids: Vec<u64> = r.spans().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![4, 5]);
    }

    #[test]
    fn noop_recorder_swallows_everything() {
        let sink = Sink::new(Box::new(NoopRecorder));
        assert!(sink.is_enabled());
        sink.emit(Source::Machine, || EventKind::EquilibriumReset);
        sink.metrics(|| TickMetrics::at(SimTime::ZERO));
        assert_eq!(sink.with(|r| r.events().len()).unwrap(), 0);
        assert_eq!(sink.with(|r| r.metrics().len()).unwrap(), 0);
    }
}
