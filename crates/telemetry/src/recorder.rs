//! Recorders and the `Sink` handle the instrumented layers hold.
//!
//! The [`Sink`] is the cheap, clonable handle threaded through the machine,
//! controllers, and tiering systems. Disabled (the default) it is a `None`
//! and every emit is a branch on that option — the payload-building closure
//! is never called, so the hot path does no allocation or formatting.
//! Enabled, it shares one [`Recorder`] plus a "current sim time" cell the
//! machine refreshes each tick so layers without their own clock (the
//! Colloid controller, the retry queue) can stamp events.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use simkit::SimTime;

use crate::event::{Event, EventKind, Source};
use crate::metrics::TickMetrics;

/// Destination for events and metric rows.
///
/// Implementations must be passive: recording must not mutate simulation
/// state or draw randomness, so enabling a recorder never changes a run.
pub trait Recorder {
    /// Record one event (may drop it, e.g. when a ring is full).
    fn record_event(&mut self, ev: Event);
    /// Record one per-quantum metric row.
    fn record_metrics(&mut self, m: TickMetrics);
    /// Snapshot of retained events, oldest first.
    fn events(&self) -> Vec<Event>;
    /// Snapshot of retained metric rows, oldest first.
    fn metrics(&self) -> Vec<TickMetrics>;
    /// How many events were discarded to stay within bounds.
    fn dropped_events(&self) -> u64 {
        0
    }
    /// How many metric rows were discarded to stay within bounds.
    fn dropped_metrics(&self) -> u64 {
        0
    }
}

/// Discards everything. Used by the bit-identity tests to prove that an
/// *enabled* sink still changes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_event(&mut self, _ev: Event) {}
    fn record_metrics(&mut self, _m: TickMetrics) {}
    fn events(&self) -> Vec<Event> {
        Vec::new()
    }
    fn metrics(&self) -> Vec<TickMetrics> {
        Vec::new()
    }
}

/// Bounded in-memory recorder: keeps the most recent `event_cap` events and
/// `metric_cap` metric rows, dropping the oldest on overflow. Memory use is
/// proportional to the caps, never to run length.
///
/// Timestamps are clamped monotone **per source**: a source whose event
/// arrives stamped earlier than its previous event is recorded at the
/// previous stamp (sim layers emit in causal order, so in practice the
/// clamp only defends against a stale shared clock at tick boundaries).
#[derive(Debug)]
pub struct RingRecorder {
    event_cap: usize,
    metric_cap: usize,
    events: VecDeque<Event>,
    metrics: VecDeque<TickMetrics>,
    dropped_events: u64,
    dropped_metrics: u64,
    last_t: [SimTime; Source::COUNT],
}

impl RingRecorder {
    /// A ring retaining at most `event_cap` events and `metric_cap` rows.
    /// Caps of zero retain nothing (everything counts as dropped).
    pub fn new(event_cap: usize, metric_cap: usize) -> Self {
        RingRecorder {
            event_cap,
            metric_cap,
            events: VecDeque::new(),
            metrics: VecDeque::new(),
            dropped_events: 0,
            dropped_metrics: 0,
            last_t: [SimTime::ZERO; Source::COUNT],
        }
    }

    /// Retained event count.
    pub fn event_len(&self) -> usize {
        self.events.len()
    }

    /// Retained metric-row count.
    pub fn metric_len(&self) -> usize {
        self.metrics.len()
    }
}

impl Recorder for RingRecorder {
    fn record_event(&mut self, mut ev: Event) {
        if self.event_cap == 0 {
            self.dropped_events += 1;
            return;
        }
        let slot = &mut self.last_t[ev.source.index()];
        if ev.t < *slot {
            ev.t = *slot;
        } else {
            *slot = ev.t;
        }
        if self.events.len() == self.event_cap {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(ev);
    }

    fn record_metrics(&mut self, m: TickMetrics) {
        if self.metric_cap == 0 {
            self.dropped_metrics += 1;
            return;
        }
        if self.metrics.len() == self.metric_cap {
            self.metrics.pop_front();
            self.dropped_metrics += 1;
        }
        self.metrics.push_back(m);
    }

    fn events(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    fn metrics(&self) -> Vec<TickMetrics> {
        self.metrics.iter().cloned().collect()
    }

    fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    fn dropped_metrics(&self) -> u64 {
        self.dropped_metrics
    }
}

struct SinkShared {
    rec: RefCell<Box<dyn Recorder>>,
    now: Cell<SimTime>,
}

/// Clonable handle to a shared [`Recorder`], or nothing at all.
///
/// All clones of one enabled sink share the recorder and the current-time
/// cell, so the machine (which knows the time) and the controllers (which
/// don't) stamp into the same stream.
#[derive(Clone, Default)]
pub struct Sink {
    inner: Option<Rc<SinkShared>>,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Sink(disabled)"),
            Some(sh) => write!(f, "Sink(enabled, now={:?})", sh.now.get()),
        }
    }
}

impl Sink {
    /// The zero-cost disabled sink (also `Sink::default()`).
    pub fn disabled() -> Self {
        Sink { inner: None }
    }

    /// An enabled sink writing into `rec`.
    pub fn new(rec: Box<dyn Recorder>) -> Self {
        Sink {
            inner: Some(Rc::new(SinkShared {
                rec: RefCell::new(rec),
                now: Cell::new(SimTime::ZERO),
            })),
        }
    }

    /// Convenience: an enabled sink backed by a fresh [`RingRecorder`].
    pub fn ring(event_cap: usize, metric_cap: usize) -> Self {
        Sink::new(Box::new(RingRecorder::new(event_cap, metric_cap)))
    }

    /// Whether emits go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Refresh the shared clock (the machine calls this each tick with the
    /// tick's end time, so clock-less layers stamp at quantum granularity).
    pub fn set_now(&self, t: SimTime) {
        if let Some(sh) = &self.inner {
            sh.now.set(t);
        }
    }

    /// The shared clock's current value (ZERO when disabled).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Some(sh) => sh.now.get(),
            None => SimTime::ZERO,
        }
    }

    /// Emit an event stamped with the shared clock. The closure runs only
    /// when the sink is enabled — build the payload inside it.
    pub fn emit(&self, source: Source, kind: impl FnOnce() -> EventKind) {
        if let Some(sh) = &self.inner {
            let ev = Event {
                t: sh.now.get(),
                source,
                kind: kind(),
            };
            sh.rec.borrow_mut().record_event(ev);
        }
    }

    /// Emit an event at an explicit simulated time (for layers that know
    /// exactly when something happened, like the migration engine).
    pub fn emit_at(&self, t: SimTime, source: Source, kind: impl FnOnce() -> EventKind) {
        if let Some(sh) = &self.inner {
            let ev = Event {
                t,
                source,
                kind: kind(),
            };
            sh.rec.borrow_mut().record_event(ev);
        }
    }

    /// Record a metric row. The closure runs only when enabled.
    pub fn metrics(&self, m: impl FnOnce() -> TickMetrics) {
        if let Some(sh) = &self.inner {
            let row = m();
            sh.rec.borrow_mut().record_metrics(row);
        }
    }

    /// Run `f` against the recorder (e.g. to snapshot events at run end).
    /// Returns `None` when the sink is disabled.
    pub fn with<R>(&self, f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|sh| f(sh.rec.borrow().as_ref() as &dyn Recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ps: u64, source: Source) -> Event {
        Event {
            t: SimTime::from_ps(t_ps),
            source,
            kind: EventKind::EquilibriumReset,
        }
    }

    #[test]
    fn disabled_sink_never_runs_closures() {
        let sink = Sink::disabled();
        sink.emit(Source::Machine, || panic!("must not build payload"));
        sink.metrics(|| panic!("must not build row"));
        assert!(!sink.is_enabled());
        assert!(sink.with(|_| ()).is_none());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = RingRecorder::new(3, 2);
        for i in 0..5 {
            r.record_event(ev(i, Source::Machine));
        }
        assert_eq!(r.event_len(), 3);
        assert_eq!(r.dropped_events(), 2);
        let kept: Vec<u64> = r.events().iter().map(|e| e.t.as_ps()).collect();
        assert_eq!(kept, vec![2, 3, 4]);

        for t in 0..4u64 {
            r.record_metrics(TickMetrics::at(SimTime::from_ps(t)));
        }
        assert_eq!(r.metric_len(), 2);
        assert_eq!(r.dropped_metrics(), 2);
    }

    #[test]
    fn zero_cap_retains_nothing() {
        let mut r = RingRecorder::new(0, 0);
        r.record_event(ev(1, Source::Machine));
        r.record_metrics(TickMetrics::at(SimTime::ZERO));
        assert!(r.events().is_empty());
        assert!(r.metrics().is_empty());
        assert_eq!(r.dropped_events(), 1);
        assert_eq!(r.dropped_metrics(), 1);
    }

    #[test]
    fn per_source_timestamps_clamped_monotone() {
        let mut r = RingRecorder::new(16, 0);
        r.record_event(ev(100, Source::Colloid));
        r.record_event(ev(50, Source::Colloid)); // stale clock: clamps to 100
        r.record_event(ev(70, Source::Machine)); // other source unaffected
        r.record_event(ev(120, Source::Colloid));
        let ts: Vec<(usize, u64)> = r
            .events()
            .iter()
            .map(|e| (e.source.index(), e.t.as_ps()))
            .collect();
        assert_eq!(
            ts,
            vec![
                (Source::Colloid.index(), 100),
                (Source::Colloid.index(), 100),
                (Source::Machine.index(), 70),
                (Source::Colloid.index(), 120),
            ]
        );
    }

    #[test]
    fn sink_clones_share_recorder_and_clock() {
        let sink = Sink::ring(8, 8);
        let clone = sink.clone();
        sink.set_now(SimTime::from_ps(42));
        assert_eq!(clone.now().as_ps(), 42);
        clone.emit(Source::Runner, || EventKind::EquilibriumReset);
        sink.emit_at(SimTime::from_ps(7), Source::Machine, || {
            EventKind::TierEvacuation { pages: 3 }
        });
        let events = sink.with(|r| r.events()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t.as_ps(), 42);
        assert_eq!(events[0].source, Source::Runner);
        assert_eq!(events[1].t.as_ps(), 7);
    }

    #[test]
    fn noop_recorder_swallows_everything() {
        let sink = Sink::new(Box::new(NoopRecorder));
        assert!(sink.is_enabled());
        sink.emit(Source::Machine, || EventKind::EquilibriumReset);
        sink.metrics(|| TickMetrics::at(SimTime::ZERO));
        assert_eq!(sink.with(|r| r.events().len()).unwrap(), 0);
        assert_eq!(sink.with(|r| r.metrics().len()).unwrap(), 0);
    }
}
