//! Telemetry subsystem: one observability layer for the whole stack.
//!
//! Every layer of the reproduction — the [`memsim`-style machine, the
//! Colloid controllers, the tiering systems, the supervisor, and the
//! experiment runner — records into the same two channels:
//!
//! - a **typed event stream** ([`Event`]): migration start/complete/fail/
//!   retry, Colloid watermark moves and `p` updates, supervisor mode
//!   transitions, fault injections, tier evacuations — each stamped with
//!   the simulated time it happened at;
//! - a **per-quantum metric series** ([`TickMetrics`]): per-tier loaded
//!   latency (Little's-Law estimate and ground truth), occupancy, arrival
//!   rate, migration bandwidth and backlog, default-tier traffic share,
//!   and application throughput.
//!
//! Both flow through a [`Sink`] handle into a [`Recorder`]. Two recorders
//! ship: the bounded, drop-oldest [`RingRecorder`] and the do-nothing
//! [`NoopRecorder`].
//!
//! # Overhead contract
//!
//! A disabled sink ([`Sink::disabled`], the default everywhere) is
//! **zero-cost on the hot path**: event payloads are built inside closures
//! that are never called, so no allocation, no formatting, and no RNG draw
//! happens when telemetry is off. Recording itself is *passive* — it reads
//! simulation state but never mutates it and never draws randomness — so
//! runs are bit-identical with telemetry disabled, enabled with a
//! [`NoopRecorder`], or enabled with a [`RingRecorder`] (the golden
//! bit-identity tests in `crates/experiments` pin this).
//!
//! On top of the raw streams sit [`export`] (NDJSON event logs, CSV metric
//! series, and an offline NDJSON schema validator), [`analytics`]
//! (time-to-equilibrium after a workload shift, migration-efficiency
//! accounting, latency-inversion episode histograms), and [`render`]
//! (plain-text series and run-timeline views, used by the `timeline`
//! binary in `crates/experiments`).
//!
//! # Causal tracing
//!
//! The third channel is the **span stream** ([`span`]): hierarchical
//! scoped spans (`runner.tick` ⊃ `machine.tick`), async extents (one per
//! page copy, crossing tick boundaries), and instant *decision spans*
//! whose ids flow as `cause` links — so a completed migration resolves
//! back to the controller decision that issued it. On top of the spans
//! sit [`provenance`] (per-page move histories, ping-pong detection, and
//! a blame report attributing wasted migrations to their issuing
//! decision) and [`trace`] (a chrome-`trace_event`/Perfetto JSON
//! exporter with an offline format checker, plus folded stacks for
//! flamegraph tooling). The same overhead contract applies: span APIs on
//! a disabled sink return [`SpanId::NONE`] and touch nothing.

pub mod analytics;
pub mod event;
pub mod export;
pub mod metrics;
pub mod provenance;
pub mod recorder;
pub mod render;
pub mod span;
pub mod trace;

pub use analytics::{
    migration_accounting, time_to_equilibrium, InversionStats, MigrationAccounting,
};
pub use event::{Event, EventKind, FailReason, Source};
pub use export::{events_to_ndjson, metrics_to_csv, validate_ndjson};
pub use metrics::TickMetrics;
pub use provenance::{provenance, BlameEntry, PageHistory, ProvenanceReport};
pub use recorder::{NoopRecorder, Recorder, RingRecorder, Sink};
pub use span::{SpanId, SpanIndex, SpanKind, SpanPayload, SpanRecord};
pub use trace::{chrome_trace_json, folded_stacks, validate_chrome_trace};
