//! Exporters: NDJSON event logs and CSV metric series.
//!
//! JSON is hand-rolled (no serde in the offline build): every event becomes
//! one object per line with the required fields `seq`, `t_ps` (integer
//! picoseconds — exact, no float rounding), `source`, and `event`, plus the
//! payload fields of the variant. Non-finite floats serialize as `null`.
//! [`validate_ndjson`] re-parses a log with a small recursive-descent JSON
//! parser and checks the schema, so CI can verify emitted logs offline.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::metrics::TickMetrics;

pub(crate) fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{v:?}` keeps a decimal point or exponent, so the value reads
        // back as a JSON number distinguishable from an integer.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_field_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn push_field_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ",\"{key}\":");
    json_f64(out, v);
}

fn push_field_str(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    json_escape(out, v);
    out.push('"');
}

fn push_field_bool(out: &mut String, key: &str, v: bool) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn write_event_line(out: &mut String, seq: u64, ev: &Event) {
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"t_ps\":{},\"source\":\"{}\",\"event\":\"{}\"",
        ev.t.as_ps(),
        ev.source.name(),
        ev.kind.name()
    );
    match &ev.kind {
        EventKind::MigrationStart { vpn, src, dst } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "src", *src as u64);
            push_field_u64(out, "dst", *dst as u64);
        }
        EventKind::MigrationComplete {
            vpn,
            src,
            dst,
            copy_ns,
        } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "src", *src as u64);
            push_field_u64(out, "dst", *dst as u64);
            push_field_f64(out, "copy_ns", *copy_ns);
        }
        EventKind::MigrationFail { vpn, dst, reason } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "dst", *dst as u64);
            push_field_str(out, "reason", reason.name());
        }
        EventKind::MigrationRetry { vpn, dst } | EventKind::RetryExhausted { vpn, dst } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "dst", *dst as u64);
        }
        EventKind::TxnDirty { vpn, attempt } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "attempt", *attempt as u64);
        }
        EventKind::TxnFailover {
            vpn,
            from_channel,
            to_channel,
        } => {
            push_field_u64(out, "vpn", *vpn);
            push_field_u64(out, "from_channel", *from_channel as u64);
            push_field_u64(out, "to_channel", *to_channel as u64);
        }
        EventKind::BatchCommit { pages, cost_ns } => {
            push_field_u64(out, "pages", *pages);
            push_field_f64(out, "cost_ns", *cost_ns);
        }
        EventKind::WatermarkMove { p_lo, p_hi, reset } => {
            push_field_f64(out, "p_lo", *p_lo);
            push_field_f64(out, "p_hi", *p_hi);
            push_field_bool(out, "reset", *reset);
        }
        EventKind::PUpdate {
            p,
            l_default_ns,
            l_alternate_ns,
            mode,
            delta_p,
            byte_limit,
        } => {
            push_field_f64(out, "p", *p);
            push_field_f64(out, "l_default_ns", *l_default_ns);
            push_field_f64(out, "l_alternate_ns", *l_alternate_ns);
            push_field_str(out, "mode", mode);
            push_field_f64(out, "delta_p", *delta_p);
            push_field_u64(out, "byte_limit", *byte_limit);
        }
        EventKind::ModeTransition { from, to } => {
            push_field_str(out, "from", from);
            push_field_str(out, "to", to);
        }
        EventKind::ProbeSent { vpn } => {
            push_field_u64(out, "vpn", *vpn);
        }
        EventKind::FaultsInjected {
            noisy,
            stale,
            dropped,
            migration_failures,
            pebs_dropped,
            evacuated,
            outage_aborts,
            storm_dirties,
        } => {
            push_field_u64(out, "noisy", *noisy);
            push_field_u64(out, "stale", *stale);
            push_field_u64(out, "dropped", *dropped);
            push_field_u64(out, "migration_failures", *migration_failures);
            push_field_u64(out, "pebs_dropped", *pebs_dropped);
            push_field_u64(out, "evacuated", *evacuated);
            push_field_u64(out, "outage_aborts", *outage_aborts);
            push_field_u64(out, "storm_dirties", *storm_dirties);
        }
        EventKind::TierEvacuation { pages } => {
            push_field_u64(out, "pages", *pages);
        }
        EventKind::WorkloadShift { what } => {
            push_field_str(out, "what", what);
        }
        EventKind::EquilibriumReset => {}
    }
    out.push_str("}\n");
}

/// Serializes events as NDJSON: one JSON object per line, in order, with a
/// zero-based `seq` number.
pub fn events_to_ndjson(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for (seq, ev) in events.iter().enumerate() {
        write_event_line(&mut out, seq as u64, ev);
    }
    out
}

fn csv_opt(out: &mut String, v: Option<f64>) {
    match v {
        Some(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        _ => {}
    }
}

/// Serializes a metric series as CSV with a header row. Missing or
/// non-finite latencies become empty cells.
pub fn metrics_to_csv(rows: &[TickMetrics]) -> String {
    let mut out = String::with_capacity(rows.len() * 128 + 256);
    out.push_str(
        "t_ms,ops_per_sec,l_default_ns,l_alternate_ns,true_l_default_ns,true_l_alternate_ns,\
         occupancy_default,occupancy_alternate,rate_default_per_ns,rate_alternate_per_ns,\
         migrated_bytes,migration_backlog,app_bytes_default,app_bytes_alternate,\
         default_app_share\n",
    );
    for m in rows {
        let _ = write!(out, "{},{}", m.t.as_ns() / 1e6, m.ops_per_sec);
        out.push(',');
        csv_opt(&mut out, m.l_default_ns);
        out.push(',');
        csv_opt(&mut out, m.l_alternate_ns);
        out.push(',');
        csv_opt(&mut out, m.true_l_default_ns);
        out.push(',');
        csv_opt(&mut out, m.true_l_alternate_ns);
        let _ = write!(
            out,
            ",{},{},{},{},{},{},{},{},{}",
            m.occupancy_default,
            m.occupancy_alternate,
            m.rate_default_per_ns,
            m.rate_alternate_per_ns,
            m.migrated_bytes,
            m.migration_backlog,
            m.app_bytes_default,
            m.app_bytes_alternate,
            m.default_app_share()
        );
        out.push('\n');
    }
    out
}

// --- NDJSON validation ---------------------------------------------------

/// A parsed JSON value (just enough for schema validation).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: validate and copy just this char
                    // (never the whole remaining input — that would make
                    // parsing a large document quadratic).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

const KNOWN_SOURCES: &[&str] = &["machine", "colloid", "system", "supervisor", "runner"];
const KNOWN_EVENTS: &[&str] = &[
    "migration_start",
    "migration_complete",
    "migration_fail",
    "txn_dirty",
    "txn_failover",
    "batch_commit",
    "migration_retry",
    "retry_exhausted",
    "watermark_move",
    "p_update",
    "mode_transition",
    "probe_sent",
    "faults_injected",
    "tier_evacuation",
    "workload_shift",
    "equilibrium_reset",
];

/// Validates an NDJSON event log against the telemetry schema: each
/// non-empty line must parse as a JSON object with integer `seq` (dense,
/// zero-based), integer `t_ps`, a known `source`, and a known `event`.
/// Returns the number of validated lines, or a message naming the first
/// offending line.
pub fn validate_ndjson(log: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in log.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| format!("line {}: {}", lineno + 1, msg);
        let mut p = Parser::new(line);
        let v = p.value().map_err(fail)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(fail("trailing characters after JSON object".to_string()));
        }
        if !matches!(v, Json::Obj(_)) {
            return Err(fail("not a JSON object".to_string()));
        }
        let seq = v
            .get("seq")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric \"seq\"".to_string()))?;
        if seq != count as f64 {
            return Err(fail(format!("seq {seq} out of order (expected {count})")));
        }
        let t_ps = v
            .get("t_ps")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric \"t_ps\"".to_string()))?;
        if t_ps < 0.0 || t_ps.fract() != 0.0 {
            return Err(fail(format!("t_ps {t_ps} is not a non-negative integer")));
        }
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"source\"".to_string()))?;
        if !KNOWN_SOURCES.contains(&source) {
            return Err(fail(format!("unknown source \"{source}\"")));
        }
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"event\"".to_string()))?;
        if !KNOWN_EVENTS.contains(&event) {
            return Err(fail(format!("unknown event \"{event}\"")));
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FailReason, Source};
    use simkit::SimTime;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t: SimTime::from_ns(100.0),
                source: Source::Machine,
                kind: EventKind::MigrationStart {
                    vpn: 7,
                    src: 0,
                    dst: 1,
                },
            },
            Event {
                t: SimTime::from_ns(250.5),
                source: Source::Machine,
                kind: EventKind::MigrationComplete {
                    vpn: 7,
                    src: 0,
                    dst: 1,
                    copy_ns: 150.5,
                },
            },
            Event {
                t: SimTime::from_ns(300.0),
                source: Source::Colloid,
                kind: EventKind::PUpdate {
                    p: 0.25,
                    l_default_ns: 210.0,
                    l_alternate_ns: 130.0,
                    mode: "demote",
                    delta_p: 0.01,
                    byte_limit: 65536,
                },
            },
            Event {
                t: SimTime::from_ns(300.0),
                source: Source::Runner,
                kind: EventKind::WorkloadShift {
                    what: "antagonist \"stream\" -> 3x".to_string(),
                },
            },
            Event {
                t: SimTime::from_ns(400.0),
                source: Source::Machine,
                kind: EventKind::MigrationFail {
                    vpn: 9,
                    dst: 0,
                    reason: FailReason::Outage,
                },
            },
        ]
    }

    #[test]
    fn ndjson_round_trips_through_validator() {
        let log = events_to_ndjson(&sample_events());
        assert_eq!(log.lines().count(), 5);
        assert_eq!(validate_ndjson(&log), Ok(5));
        // Exact picoseconds, no float rounding.
        assert!(log.lines().next().unwrap().contains("\"t_ps\":100000"));
        // Escaped quotes inside the workload-shift description.
        assert!(log.contains("antagonist \\\"stream\\\" -> 3x"));
    }

    #[test]
    fn transactional_event_names_validate() {
        let events = vec![
            Event {
                t: SimTime::ZERO,
                source: Source::Machine,
                kind: EventKind::TxnDirty { vpn: 1, attempt: 2 },
            },
            Event {
                t: SimTime::from_ns(10.0),
                source: Source::Machine,
                kind: EventKind::TxnFailover {
                    vpn: 1,
                    from_channel: 0,
                    to_channel: 1,
                },
            },
            Event {
                t: SimTime::from_ns(20.0),
                source: Source::Machine,
                kind: EventKind::BatchCommit {
                    pages: 8,
                    cost_ns: 4000.0,
                },
            },
        ];
        let log = events_to_ndjson(&events);
        assert_eq!(validate_ndjson(&log), Ok(3));
        assert!(log.contains("\"event\":\"txn_dirty\""));
        assert!(log.contains("\"event\":\"txn_failover\""));
        assert!(log.contains("\"event\":\"batch_commit\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event {
            t: SimTime::ZERO,
            source: Source::Colloid,
            kind: EventKind::WatermarkMove {
                p_lo: f64::NAN,
                p_hi: f64::INFINITY,
                reset: true,
            },
        };
        let log = events_to_ndjson(&[ev]);
        assert!(log.contains("\"p_lo\":null"));
        assert!(log.contains("\"p_hi\":null"));
        assert_eq!(validate_ndjson(&log), Ok(1));
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_ndjson("not json\n").is_err());
        assert!(validate_ndjson("{\"seq\":0}\n").is_err());
        let bad_source =
            "{\"seq\":0,\"t_ps\":1,\"source\":\"kernel\",\"event\":\"migration_start\"}\n";
        assert!(validate_ndjson(bad_source).unwrap_err().contains("kernel"));
        let bad_seq = "{\"seq\":3,\"t_ps\":1,\"source\":\"machine\",\"event\":\"probe_sent\"}\n";
        assert!(validate_ndjson(bad_seq).unwrap_err().contains("seq"));
        let frac_t = "{\"seq\":0,\"t_ps\":1.5,\"source\":\"machine\",\"event\":\"probe_sent\"}\n";
        assert!(validate_ndjson(frac_t).unwrap_err().contains("t_ps"));
    }

    #[test]
    fn validator_accepts_blank_lines_and_counts() {
        let log = events_to_ndjson(&sample_events());
        let padded = format!("\n{log}\n\n");
        assert_eq!(validate_ndjson(&padded), Ok(5));
    }

    #[test]
    fn csv_has_header_and_blank_cells_for_missing() {
        let rows = vec![
            TickMetrics::at(SimTime::from_ms(1.0)),
            TickMetrics {
                ops_per_sec: 2.5e8,
                l_default_ns: Some(212.0),
                l_alternate_ns: Some(f64::NAN),
                app_bytes_default: 640,
                app_bytes_alternate: 1280,
                ..TickMetrics::at(SimTime::from_ms(2.0))
            },
        ];
        let csv = metrics_to_csv(&rows);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("t_ms,ops_per_sec,l_default_ns"));
        assert_eq!(header.split(',').count(), 15);
        let r1 = lines.next().unwrap();
        assert!(r1.starts_with("1,0,,,"));
        let r2 = lines.next().unwrap();
        assert!(r2.contains("212"));
        // NaN latency renders as an empty cell, not "NaN".
        assert!(!r2.contains("NaN"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 15);
        }
    }
}
