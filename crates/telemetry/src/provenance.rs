//! Per-page provenance: fold the migration span stream into per-page move
//! histories, detect churn (ping-pong: a page migrated again within a
//! short window), and attribute wasted copies to the controller decision
//! that issued them (the "blame" report).
//!
//! The input is the recorded span stream: every completed page copy is one
//! async `migration` span carrying `{vpn, src, dst}` and a `cause` link to
//! the decision span in force when the migration was enqueued (see
//! [`crate::span`]). The useful/wasted split follows the same rule as
//! [`crate::analytics::migration_accounting`] — per-tier round trips over
//! the page's actual move history (see [`classify_round_trips`]): a copy
//! is wasted iff a later copy returns the page to a tier it had already
//! visited, which for two tiers degenerates to the old `c % 2` rule. The
//! blame report's wasted total always reconciles with the accounting (the
//! `trace --smoke` binary asserts this).

use std::collections::HashMap;
use std::fmt::Write as _;

use simkit::SimTime;

use crate::event::{Event, EventKind};
use crate::span::{SpanId, SpanIndex, SpanKind, SpanPayload, SpanRecord};

/// One completed copy of a page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageMove {
    /// When the copy completed.
    pub t: SimTime,
    /// Source tier the copy left.
    pub src: u8,
    /// Destination tier.
    pub dst: u8,
    /// The migration span that carried the copy.
    pub span: SpanId,
    /// The decision span the copy was attributed to (`NONE` if untracked).
    pub cause: SpanId,
    /// Whether the accounting counts this copy as wasted.
    pub wasted: bool,
}

/// Splits a page's completed copies into useful and wasted by per-tier
/// round trips: walking the move history with a stack of visited tiers
/// (seeded with `first_src`), a copy into an unvisited tier extends the
/// page's net displacement and is tentatively useful; a copy back into a
/// tier already on the stack closes a round trip, wasting itself *and*
/// every copy made since the page last left that tier. Returns one
/// `wasted` flag per move, in order.
///
/// With two tiers every move alternates direction, so the stack never
/// grows past two entries and the result degenerates to the historical
/// rule: of `c` copies, `c % 2` are useful (the last one, iff the count
/// is odd).
pub fn classify_round_trips(first_src: u8, dsts: &[u8]) -> Vec<bool> {
    // (tier, index of the move that entered it); the seed has no move.
    let mut stack: Vec<(u8, Option<usize>)> = vec![(first_src, None)];
    let mut wasted = vec![false; dsts.len()];
    for (i, &dst) in dsts.iter().enumerate() {
        if let Some(k) = stack.iter().position(|&(t, _)| t == dst) {
            // Round trip: everything since the page last left `dst` —
            // the copies that entered the now-abandoned tiers plus this
            // returning copy — was net-zero displacement.
            for &(_, entered) in &stack[k + 1..] {
                if let Some(j) = entered {
                    wasted[j] = true;
                }
            }
            wasted[i] = true;
            stack.truncate(k + 1);
        } else {
            stack.push((dst, Some(i)));
        }
    }
    wasted
}

/// A page's full migration history.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHistory {
    /// Virtual page number.
    pub vpn: u64,
    /// Completed copies, oldest first.
    pub moves: Vec<PageMove>,
    /// Ping-pong incidents: a move followed by another within the window.
    pub ping_pongs: u64,
}

impl PageHistory {
    /// The tier the page ended in (destination of the last move).
    pub fn final_tier(&self) -> u8 {
        self.moves.last().map_or(u8::MAX, |m| m.dst)
    }

    /// Copies the accounting considers useful (net displacement along the
    /// tier chain; see [`classify_round_trips`]).
    pub fn useful(&self) -> u64 {
        self.moves.iter().filter(|m| !m.wasted).count() as u64
    }

    /// Copies the accounting considers wasted (undone by a round trip).
    pub fn wasted(&self) -> u64 {
        self.moves.iter().filter(|m| m.wasted).count() as u64
    }
}

/// One row of the blame report: a decision site and its migration tally.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameEntry {
    /// Decision label, `name(mode)` (e.g. `colloid.decide(demote)`).
    pub site: String,
    /// Completed copies attributed to this site.
    pub issued: u64,
    /// Of those, copies the accounting counts as wasted.
    pub wasted: u64,
}

/// The folded provenance of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceReport {
    /// Per-page histories, ascending vpn.
    pub pages: Vec<PageHistory>,
    /// Total completed copies (sum of history lengths).
    pub completed: u64,
    /// Copies contributing net displacement along each page's tier path
    /// (for two tiers this is the historical `Σ c_i % 2`).
    pub useful: u64,
    /// Copies undone by a later move (`completed - useful`).
    pub wasted: u64,
    /// The churn window used for ping-pong detection.
    pub window: SimTime,
    /// Pages with at least one ping-pong incident.
    pub ping_pong_pages: u64,
    /// Total ping-pong incidents across all pages.
    pub ping_pong_incidents: u64,
    /// Blame rows, most wasted first (ties by site name).
    pub blame: Vec<BlameEntry>,
    /// Completed copies whose cause chain did not reach a decision span
    /// (dropped spans, or migrations issued outside any decision).
    pub unattributed: u64,
    /// `MigrationComplete` events in the event stream — should equal
    /// `completed` when neither ring overflowed.
    pub completed_events: u64,
}

impl ProvenanceReport {
    /// Plain-text rendering (blame table, churn summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  provenance: {} completed copies over {} pages ({} useful / {} wasted)",
            self.completed,
            self.pages.len(),
            self.useful,
            self.wasted,
        );
        let _ = writeln!(
            out,
            "  ping-pong (window {:.2} ms): {} pages, {} incidents",
            self.window.as_ns() / 1e6,
            self.ping_pong_pages,
            self.ping_pong_incidents,
        );
        if self.blame.is_empty() {
            let _ = writeln!(out, "  blame: no attributed migrations");
        } else {
            let _ = writeln!(out, "  blame (wasted copies by issuing decision):");
            for b in &self.blame {
                let _ = writeln!(
                    out,
                    "    {:<28} issued {:>6}   wasted {:>6}",
                    b.site, b.issued, b.wasted
                );
            }
        }
        if self.unattributed > 0 {
            let _ = writeln!(out, "    (unattributed copies: {})", self.unattributed);
        }
        out
    }
}

/// Label for the decision a move's cause chain resolves to.
fn site_of(chain: &[&SpanRecord]) -> String {
    let decision = chain.last().expect("chain never empty");
    match decision.payload {
        SpanPayload::Decision { mode } => format!("{}({})", decision.name, mode),
        _ => decision.name.to_string(),
    }
}

/// Folds migration spans (plus the event stream for cross-checking) into
/// per-page histories, churn statistics, and the blame report. `window`
/// is the ping-pong horizon: a page moved again within `window` of its
/// previous copy counts as one ping-pong incident.
pub fn provenance(events: &[Event], spans: &[SpanRecord], window: SimTime) -> ProvenanceReport {
    let mut by_page: HashMap<u64, Vec<PageMove>> = HashMap::new();
    for sp in spans {
        if sp.kind != SpanKind::Async {
            continue;
        }
        let SpanPayload::Migration { vpn, src, dst } = sp.payload else {
            continue;
        };
        by_page.entry(vpn).or_default().push(PageMove {
            t: sp.t_end,
            src,
            dst,
            span: sp.id,
            cause: sp.cause,
            wasted: false,
        });
    }

    let index = SpanIndex::new(spans);
    let mut pages: Vec<PageHistory> = Vec::with_capacity(by_page.len());
    let mut completed = 0u64;
    let mut useful = 0u64;
    let mut ping_pong_pages = 0u64;
    let mut ping_pong_incidents = 0u64;
    let mut unattributed = 0u64;
    let mut blame: HashMap<String, BlameEntry> = HashMap::new();
    for (vpn, mut moves) in by_page {
        moves.sort_by_key(|m| m.t);
        completed += moves.len() as u64;
        // A copy is wasted iff a later copy returns the page to a tier it
        // already visited: net displacement along the move path decides.
        let dsts: Vec<u8> = moves.iter().map(|m| m.dst).collect();
        let wasted_flags = classify_round_trips(moves[0].src, &dsts);
        useful += wasted_flags.iter().filter(|&&w| !w).count() as u64;
        for (m, w) in moves.iter_mut().zip(wasted_flags) {
            m.wasted = w;
            let site = if m.cause.is_some() {
                index.decision_chain(m.cause).map(|chain| site_of(&chain))
            } else {
                None
            };
            match site {
                Some(site) => {
                    let e = blame.entry(site.clone()).or_insert(BlameEntry {
                        site,
                        issued: 0,
                        wasted: 0,
                    });
                    e.issued += 1;
                    e.wasted += u64::from(m.wasted);
                }
                None => unattributed += 1,
            }
        }
        let ping_pongs = moves
            .windows(2)
            .filter(|w| w[1].t.saturating_sub(w[0].t) <= window)
            .count() as u64;
        ping_pong_incidents += ping_pongs;
        ping_pong_pages += u64::from(ping_pongs > 0);
        pages.push(PageHistory {
            vpn,
            moves,
            ping_pongs,
        });
    }
    pages.sort_by_key(|p| p.vpn);

    let mut blame: Vec<BlameEntry> = blame.into_values().collect();
    blame.sort_by(|a, b| b.wasted.cmp(&a.wasted).then(a.site.cmp(&b.site)));

    let completed_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MigrationComplete { .. }))
        .count() as u64;

    ProvenanceReport {
        pages,
        completed,
        useful,
        wasted: completed - useful,
        window,
        ping_pong_pages,
        ping_pong_incidents,
        blame,
        unattributed,
        completed_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn decision(id: u64, mode: &'static str) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId::NONE,
            cause: SpanId::NONE,
            source: Source::Colloid,
            name: "colloid.decide",
            payload: SpanPayload::Decision { mode },
            t_start: SimTime::ZERO,
            t_end: SimTime::ZERO,
            kind: SpanKind::Scoped,
        }
    }

    fn migration(id: u64, cause: u64, vpn: u64, src: u8, dst: u8, t_us: f64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId::NONE,
            cause: SpanId(cause),
            source: Source::Machine,
            name: "migration",
            payload: SpanPayload::Migration { vpn, src, dst },
            t_start: SimTime::from_us(t_us - 1.0),
            t_end: SimTime::from_us(t_us),
            kind: SpanKind::Async,
        }
    }

    #[test]
    fn histories_split_useful_and_wasted_like_the_accounting() {
        // Page 1: three copies (1 useful, 2 wasted); page 2: two (both
        // wasted); page 3: one (useful).
        let spans = vec![
            decision(1, "demote"),
            migration(10, 1, 1, 0, 1, 10.0),
            migration(11, 1, 1, 1, 0, 500.0),
            migration(12, 1, 1, 0, 1, 900.0),
            migration(13, 1, 2, 0, 1, 20.0),
            migration(14, 1, 2, 1, 0, 800.0),
            migration(15, 1, 3, 0, 1, 30.0),
        ];
        let r = provenance(&[], &spans, SimTime::from_us(50.0));
        assert_eq!(r.completed, 6);
        assert_eq!(r.useful, 2);
        assert_eq!(r.wasted, 4);
        assert_eq!(r.pages.len(), 3);
        let p1 = &r.pages[0];
        assert_eq!(p1.vpn, 1);
        assert_eq!(p1.final_tier(), 1);
        assert_eq!(
            p1.moves.iter().map(|m| m.wasted).collect::<Vec<_>>(),
            vec![true, true, false]
        );
        assert_eq!((p1.useful(), p1.wasted()), (1, 2));
        // Blame reconciles with the totals.
        assert_eq!(r.blame.len(), 1);
        assert_eq!(r.blame[0].site, "colloid.decide(demote)");
        assert_eq!(r.blame[0].issued, 6);
        assert_eq!(r.blame[0].wasted, 4);
        assert_eq!(r.unattributed, 0);
    }

    #[test]
    fn ping_pong_detected_within_window_only() {
        let spans = vec![
            decision(1, "tick"),
            // Page 5 bounces back within 40us (window 50us): ping-pong.
            migration(10, 1, 5, 0, 1, 100.0),
            migration(11, 1, 5, 1, 0, 140.0),
            // Page 6 bounces back after 400us: churn but not ping-pong.
            migration(12, 1, 6, 0, 1, 100.0),
            migration(13, 1, 6, 1, 0, 500.0),
        ];
        let r = provenance(&[], &spans, SimTime::from_us(50.0));
        assert_eq!(r.ping_pong_pages, 1);
        assert_eq!(r.ping_pong_incidents, 1);
        assert_eq!(r.pages[0].ping_pongs, 1);
        assert_eq!(r.pages[1].ping_pongs, 0);
    }

    #[test]
    fn unresolvable_causes_count_as_unattributed() {
        let spans = vec![
            migration(10, 99, 1, 0, 1, 10.0), // cause id never recorded
            migration(11, 0, 2, 0, 1, 20.0),  // no cause at all
        ];
        let r = provenance(&[], &spans, SimTime::from_us(1.0));
        assert_eq!(r.unattributed, 2);
        assert!(r.blame.is_empty());
        assert!(r.render().contains("unattributed copies: 2"));
    }

    #[test]
    fn event_stream_cross_check_counts_completions() {
        let events = vec![Event {
            t: SimTime::from_us(10.0),
            source: Source::Machine,
            kind: EventKind::MigrationComplete {
                vpn: 1,
                src: 0,
                dst: 1,
                copy_ns: 1000.0,
            },
        }];
        let spans = vec![decision(1, "tick"), migration(10, 1, 1, 0, 1, 10.0)];
        let r = provenance(&events, &spans, SimTime::from_us(1.0));
        assert_eq!(r.completed, 1);
        assert_eq!(r.completed_events, 1);
    }

    #[test]
    fn round_trip_rule_degenerates_to_c_mod_2_on_two_tiers() {
        // Pin: for any alternating two-tier history the generalized rule
        // reproduces the old accounting exactly — `c % 2` useful copies,
        // and only the last copy of an odd count survives.
        for c in 0..8usize {
            let dsts: Vec<u8> = (0..c).map(|i| ((i + 1) % 2) as u8).collect();
            let wasted = classify_round_trips(0, &dsts);
            let useful = wasted.iter().filter(|&&w| !w).count();
            assert_eq!(useful, c % 2, "c = {c}");
            if c % 2 == 1 {
                assert!(!wasted[c - 1], "odd count: last copy is the useful one");
            }
        }
    }

    #[test]
    fn round_trip_rule_counts_net_displacement_on_three_tiers() {
        // 0 -> 1 -> 2: two hops of net displacement, both useful.
        assert_eq!(classify_round_trips(0, &[1, 2]), vec![false, false]);
        // 0 -> 1 -> 2 -> 1: the detour through tier 2 was a round trip.
        assert_eq!(classify_round_trips(0, &[1, 2, 1]), vec![false, true, true]);
        // 0 -> 2 -> 1 -> 0: everything comes home; all wasted.
        assert_eq!(classify_round_trips(0, &[2, 1, 0]), vec![true, true, true]);
        // 0 -> 1 -> 0 -> 2: the first excursion is undone, the final hop
        // to tier 2 is real displacement.
        assert_eq!(classify_round_trips(0, &[1, 0, 2]), vec![true, true, false]);
    }

    #[test]
    fn three_tier_histories_fold_round_trips() {
        // Page 1 walks 0 -> 1 -> 2 (all useful); page 2 detours
        // 0 -> 1 -> 2 -> 1 (only the first hop survives).
        let spans = vec![
            decision(1, "demote"),
            migration(10, 1, 1, 0, 1, 10.0),
            migration(11, 1, 1, 1, 2, 500.0),
            migration(12, 1, 2, 0, 1, 20.0),
            migration(13, 1, 2, 1, 2, 600.0),
            migration(14, 1, 2, 2, 1, 900.0),
        ];
        let r = provenance(&[], &spans, SimTime::from_us(50.0));
        assert_eq!(r.completed, 5);
        assert_eq!(r.useful, 3);
        assert_eq!(r.wasted, 2);
        let p1 = &r.pages[0];
        assert_eq!((p1.useful(), p1.wasted(), p1.final_tier()), (2, 0, 2));
        let p2 = &r.pages[1];
        assert_eq!((p2.useful(), p2.wasted(), p2.final_tier()), (1, 2, 1));
        // Blame still reconciles with the totals.
        assert_eq!(r.blame[0].issued, 5);
        assert_eq!(r.blame[0].wasted, 2);
    }
}
