//! Causal spans: the "why" layer on top of the flat event stream.
//!
//! The event stream (PR 3) answers *what happened when*; spans answer
//! *what caused what*. Three relationships are recorded:
//!
//! - **parent/child** — strict lexical nesting on one span stack
//!   (`runner.tick` ⊃ `machine.tick` ⊃ …), maintained by the [`Sink`]
//!   (see [`Sink::span_enter`]): a child always closes before its parent;
//! - **async extents** — work that outlives the enclosing scope, like a
//!   page copy that starts in one tick and completes several ticks later
//!   ([`Sink::span_open_at`] / [`Sink::span_close_at`]);
//! - **causal edges** — cross-source attribution: every span carries a
//!   `cause` pointing at the *decision span* whose action issued it.
//!   The machine snapshots the sink's current cause when a migration is
//!   enqueued, so a completed copy chains back through
//!   `migration → colloid.decide → system.on_tick → runner.tick` even
//!   though those live on different tracks and different times.
//!
//! Decision spans are marked by [`SpanPayload::Decision`]; resolving a
//! chain means walking `cause` links until one is found
//! ([`SpanIndex::decision_chain`]).
//!
//! [`Sink`]: crate::Sink
//! [`Sink::span_enter`]: crate::Sink::span_enter
//! [`Sink::span_open_at`]: crate::Sink::span_open_at
//! [`Sink::span_close_at`]: crate::Sink::span_close_at

use std::collections::HashMap;

use simkit::SimTime;

use crate::event::Source;

/// Identifier of a span within one recording. `SpanId::NONE` (`0`) means
/// "no span" — the id a disabled sink hands out, and the `parent`/`cause`
/// of root spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id (disabled sink, no parent, no cause).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a real id.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// How a span's extent relates to the span stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Strictly nested: entered and exited on the sink's span stack.
    Scoped,
    /// Open extent: opened and closed by id, may cross scoped boundaries
    /// (e.g. a page copy spanning several machine ticks).
    Async,
}

/// Typed payload attached to a span (kept small and allocation-free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanPayload {
    /// Plain structural span.
    None,
    /// A page-copy extent: which page moved where.
    Migration {
        /// Virtual page number being copied.
        vpn: u64,
        /// Source tier the page left.
        src: u8,
        /// Destination tier.
        dst: u8,
    },
    /// A controller decision — the anchor causal chains resolve to.
    Decision {
        /// What the decision chose (e.g. `"promote"`, `"demote"`,
        /// `"drain"`, `"probe"`, `"tick"`).
        mode: &'static str,
    },
}

impl SpanPayload {
    /// Whether this span is a controller decision.
    pub fn is_decision(&self) -> bool {
        matches!(self, SpanPayload::Decision { .. })
    }
}

/// One completed span. Spans are recorded when they *close*, so every
/// record has both stamps; the recorder's snapshot lists them in close
/// order (children before parents for scoped spans).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id (unique within one recording, never `NONE`).
    pub id: SpanId,
    /// Enclosing span on the stack at open time (`NONE` for roots).
    pub parent: SpanId,
    /// Decision span whose action issued this work (`NONE` if untracked).
    pub cause: SpanId,
    /// Which layer opened the span.
    pub source: Source,
    /// Static name (e.g. `"machine.tick"`, `"migration"`).
    pub name: &'static str,
    /// Typed payload.
    pub payload: SpanPayload,
    /// Open stamp (simulated time).
    pub t_start: SimTime,
    /// Close stamp (simulated time, `>= t_start`).
    pub t_end: SimTime,
    /// Scoped (stack) or async (open extent).
    pub kind: SpanKind,
}

impl SpanRecord {
    /// The span's duration.
    pub fn dur(&self) -> SimTime {
        self.t_end.saturating_sub(self.t_start)
    }
}

/// Id-indexed view over a recorded span list, for chain resolution.
pub struct SpanIndex<'a> {
    spans: &'a [SpanRecord],
    by_id: HashMap<SpanId, usize>,
}

impl<'a> SpanIndex<'a> {
    /// Builds the index (last record wins on duplicate ids, which cannot
    /// happen for sink-issued ids).
    pub fn new(spans: &'a [SpanRecord]) -> Self {
        let by_id = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect::<HashMap<_, _>>();
        SpanIndex { spans, by_id }
    }

    /// Looks up a span by id.
    pub fn get(&self, id: SpanId) -> Option<&'a SpanRecord> {
        self.by_id.get(&id).map(|&i| &self.spans[i])
    }

    /// Walks `cause` links from `id` (inclusive) until a decision span is
    /// found. Returns the chain ending at the decision, or `None` when the
    /// chain dead-ends (unrecorded cause, cycle guard, or no decision).
    pub fn decision_chain(&self, id: SpanId) -> Option<Vec<&'a SpanRecord>> {
        let mut chain = Vec::new();
        let mut cur = id;
        // A cause chain is a few hops (migration -> decision, possibly via
        // a retry decision); 16 bounds any accidental cycle.
        for _ in 0..16 {
            let sp = self.get(cur)?;
            chain.push(sp);
            if sp.payload.is_decision() {
                return Some(chain);
            }
            if sp.cause.is_none() {
                return None;
            }
            cur = sp.cause;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(id: u64, cause: u64, payload: SpanPayload) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId::NONE,
            cause: SpanId(cause),
            source: Source::Machine,
            name: "x",
            payload,
            t_start: SimTime::ZERO,
            t_end: SimTime::from_ns(1.0),
            kind: SpanKind::Scoped,
        }
    }

    #[test]
    fn decision_chain_resolves_through_causes() {
        let spans = vec![
            sp(1, 0, SpanPayload::Decision { mode: "tick" }),
            sp(2, 1, SpanPayload::None),
            sp(
                3,
                2,
                SpanPayload::Migration {
                    vpn: 7,
                    src: 0,
                    dst: 1,
                },
            ),
        ];
        let idx = SpanIndex::new(&spans);
        let chain = idx.decision_chain(SpanId(3)).expect("resolvable");
        let ids: Vec<u64> = chain.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        assert!(chain.last().unwrap().payload.is_decision());
    }

    #[test]
    fn decision_chain_fails_on_missing_or_cyclic_links() {
        let spans = vec![
            sp(2, 9, SpanPayload::None), // cause 9 never recorded
            sp(3, 4, SpanPayload::None), // 3 <-> 4 cycle
            sp(4, 3, SpanPayload::None),
        ];
        let idx = SpanIndex::new(&spans);
        assert!(idx.decision_chain(SpanId(2)).is_none());
        assert!(idx.decision_chain(SpanId(3)).is_none());
        assert!(idx.decision_chain(SpanId(1)).is_none());
    }
}
