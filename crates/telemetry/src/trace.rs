//! Chrome-`trace_event` / Perfetto exporter, an offline trace-format
//! checker, and a folded-stack export for flamegraph tooling.
//!
//! [`chrome_trace_json`] serializes one run — spans, events, and the
//! metric series — into the JSON Object Format of the chrome trace-event
//! spec, loadable in `ui.perfetto.dev` or `chrome://tracing`:
//!
//! - one named track (`tid`) per [`Source`], labelled via `thread_name`
//!   metadata records;
//! - scoped spans as complete duration events (`ph: "X"`);
//! - async migration extents as `"b"`/`"e"` pairs keyed by span id, so a
//!   copy that crosses tick boundaries renders as its own bar;
//! - causal edges as flow arrows (`"s"` → `"f"`) from the issuing
//!   decision span to the migration it caused;
//! - instant events (`ph: "i"`) for the flat event stream (faults, mode
//!   transitions, watermark moves, …);
//! - counter tracks (`ph: "C"`) for per-tier loaded latency, the
//!   default-tier share `p`, and the migration backlog.
//!
//! [`validate_chrome_trace`] re-parses an emitted trace with the crate's
//! dependency-free JSON parser and checks the structural rules above
//! (phase vocabulary, required fields, async begin/end balance, flow
//! start/finish pairing), so CI validates traces offline. Timestamps are
//! microseconds (floating point), the unit the trace viewers expect.

use std::collections::HashMap;
use std::fmt::Write as _;

use simkit::SimTime;

use crate::event::{Event, Source};
use crate::export::{json_escape, json_f64, Json, Parser};
use crate::metrics::TickMetrics;
use crate::render::describe_event;
use crate::span::{SpanId, SpanKind, SpanPayload, SpanRecord};

/// Simulated picoseconds → trace microseconds.
fn us(t: SimTime) -> f64 {
    t.as_ps() as f64 / 1e6
}

fn push_ts(out: &mut String, key: &str, t: SimTime) {
    let _ = write!(out, ",\"{key}\":");
    json_f64(out, us(t));
}

/// Starts one trace event object with the universally required fields.
fn begin_record(out: &mut String, name: &str, ph: char, tid: usize, t: SimTime) {
    out.push_str("{\"name\":\"");
    json_escape(out, name);
    let _ = write!(out, "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid}");
    push_ts(out, "ts", t);
}

fn span_args(out: &mut String, sp: &SpanRecord) {
    let _ = write!(
        out,
        ",\"args\":{{\"span\":{},\"parent\":{},\"cause\":{}",
        sp.id.0, sp.parent.0, sp.cause.0
    );
    match sp.payload {
        SpanPayload::None => {}
        SpanPayload::Migration { vpn, src, dst } => {
            let _ = write!(out, ",\"vpn\":{vpn},\"src\":{src},\"dst\":{dst}");
        }
        SpanPayload::Decision { mode } => {
            let _ = write!(out, ",\"mode\":\"{mode}\"");
        }
    }
    out.push('}');
}

/// Serializes a recorded run as chrome-trace JSON (see module docs).
pub fn chrome_trace_json(
    spans: &[SpanRecord],
    events: &[Event],
    metrics: &[TickMetrics],
) -> String {
    let mut out =
        String::with_capacity(256 + 160 * spans.len() + 128 * events.len() + 192 * metrics.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    // Track names: one per source, in source order.
    {
        let mut line = String::new();
        line.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\
             \"args\":{\"name\":\"colloid-sim\"}}",
        );
        push(line, &mut out);
    }
    for src in [
        Source::Machine,
        Source::Colloid,
        Source::System,
        Source::Supervisor,
        Source::Runner,
    ] {
        let line = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"ts\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            src.index(),
            src.name()
        );
        push(line, &mut out);
    }

    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for sp in spans {
        let tid = sp.source.index();
        match sp.kind {
            SpanKind::Scoped => {
                let mut line = String::new();
                begin_record(&mut line, sp.name, 'X', tid, sp.t_start);
                line.push_str(",\"dur\":");
                json_f64(&mut line, us(sp.dur()));
                line.push_str(",\"cat\":\"");
                json_escape(&mut line, sp.source.name());
                line.push('"');
                span_args(&mut line, sp);
                line.push('}');
                push(line, &mut out);
            }
            SpanKind::Async => {
                for (ph, t) in [('b', sp.t_start), ('e', sp.t_end)] {
                    let mut line = String::new();
                    begin_record(&mut line, sp.name, ph, tid, t);
                    let _ = write!(line, ",\"cat\":\"{}\",\"id\":\"{}\"", sp.name, sp.id.0);
                    if ph == 'b' {
                        span_args(&mut line, sp);
                    }
                    line.push('}');
                    push(line, &mut out);
                }
                // Causal edge: a flow arrow from the issuing decision to
                // the start of the work it caused.
                if let Some(cause) = by_id.get(&sp.cause) {
                    let mut line = String::new();
                    begin_record(&mut line, "causes", 's', cause.source.index(), cause.t_end);
                    let _ = write!(line, ",\"cat\":\"cause\",\"id\":\"{}\"}}", sp.id.0);
                    push(line, &mut out);
                    let mut line = String::new();
                    begin_record(&mut line, "causes", 'f', tid, sp.t_start);
                    let _ = write!(
                        line,
                        ",\"bp\":\"e\",\"cat\":\"cause\",\"id\":\"{}\"}}",
                        sp.id.0
                    );
                    push(line, &mut out);
                }
            }
        }
    }

    for ev in events {
        let mut line = String::new();
        begin_record(&mut line, ev.kind.name(), 'i', ev.source.index(), ev.t);
        line.push_str(",\"s\":\"t\",\"args\":{\"info\":\"");
        json_escape(&mut line, &describe_event(ev));
        line.push_str("\"}}");
        push(line, &mut out);
    }

    for m in metrics {
        let lat: Vec<(&str, f64)> = [("default", m.l_default_ns), ("alternate", m.l_alternate_ns)]
            .into_iter()
            .filter_map(|(k, v)| v.filter(|x| x.is_finite()).map(|x| (k, x)))
            .collect();
        if !lat.is_empty() {
            let mut line = String::new();
            begin_record(&mut line, "latency_ns", 'C', 0, m.t);
            line.push_str(",\"args\":{");
            for (i, (k, v)) in lat.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "\"{k}\":");
                json_f64(&mut line, *v);
            }
            line.push_str("}}");
            push(line, &mut out);
        }
        let mut line = String::new();
        begin_record(&mut line, "p_default_share", 'C', 0, m.t);
        line.push_str(",\"args\":{\"p\":");
        json_f64(&mut line, m.default_app_share());
        line.push_str("}}");
        push(line, &mut out);
        let mut line = String::new();
        begin_record(&mut line, "migration_backlog", 'C', 0, m.t);
        let _ = write!(line, ",\"args\":{{\"pages\":{}}}}}", m.migration_backlog);
        push(line, &mut out);
    }

    out.push_str("\n]}\n");
    out
}

const KNOWN_PHASES: &[&str] = &["X", "B", "E", "i", "C", "b", "e", "n", "s", "t", "f", "M"];

/// Validates chrome-trace JSON structurally (see module docs): object
/// format, known phases, required per-phase fields, balanced async
/// begin/end per `(cat, id)`, and flow finishes pairing with starts.
/// Returns the number of trace events, or the first violation.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut p = Parser::new(json);
    let root = p.value().map_err(|e| format!("parse error: {e}"))?;
    // Allow trailing whitespace/newlines only.
    p.skip_ws();
    if !p.at_end() {
        return Err("trailing data after trace object".into());
    }
    let events = root
        .get("traceEvents")
        .ok_or("missing \"traceEvents\"")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut async_depth: HashMap<(String, String), i64> = HashMap::new();
    let mut flow_starts: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut flow_finishes: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: String| format!("traceEvents[{i}]: {msg}");
        if !matches!(ev, Json::Obj(_)) {
            return Err(fail("not an object".into()));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"ph\"".into()))?;
        if !KNOWN_PHASES.contains(&ph) {
            return Err(fail(format!("unknown phase {ph:?}")));
        }
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"name\"".into()))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric \"pid\"".into()))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric \"ts\"".into()))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(fail(format!("bad ts {ts}")));
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail("\"X\" event missing numeric \"dur\"".into()))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(fail(format!("bad dur {dur}")));
                }
            }
            "b" | "e" | "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail(format!("{ph:?} event missing string \"id\"")))?
                    .to_string();
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail(format!("{ph:?} event missing string \"cat\"")))?
                    .to_string();
                match ph {
                    "b" => *async_depth.entry((cat, id)).or_insert(0) += 1,
                    "e" => {
                        let d = async_depth.entry((cat, id.clone())).or_insert(0);
                        *d -= 1;
                        if *d < 0 {
                            return Err(fail(format!("async end without begin (id {id})")));
                        }
                    }
                    "s" => {
                        flow_starts.insert(id);
                    }
                    _ => flow_finishes.push(id),
                }
            }
            "C" => {
                let args = ev
                    .get("args")
                    .ok_or_else(|| fail("counter missing \"args\"".into()))?;
                let Json::Obj(fields) = args else {
                    return Err(fail("counter \"args\" is not an object".into()));
                };
                if fields.is_empty() {
                    return Err(fail("counter \"args\" is empty".into()));
                }
                for (k, v) in fields {
                    if v.as_num().is_none() {
                        return Err(fail(format!("counter series {k:?} is not numeric")));
                    }
                }
            }
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("metadata missing args.name".into()))?;
            }
            _ => {}
        }
    }
    if let Some(((cat, id), _)) = async_depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!("unbalanced async span (cat {cat:?}, id {id:?})"));
    }
    for id in &flow_finishes {
        if !flow_starts.contains(id) {
            return Err(format!("flow finish without start (id {id:?})"));
        }
    }
    Ok(events.len())
}

/// Folded-stack export (flamegraph.pl / inferno format): one line per
/// distinct span path, `root;child;leaf <self-time-ns>`, aggregated over
/// all instances and sorted. Scoped spans fold along their parent chain;
/// async extents (page copies) are their own roots since they overlap the
/// scoped tree rather than nesting inside it.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    // Sum of scoped children durations per parent, for self-time.
    let mut child_ps: HashMap<SpanId, u64> = HashMap::new();
    for sp in spans {
        if sp.kind == SpanKind::Scoped && sp.parent.is_some() {
            *child_ps.entry(sp.parent).or_insert(0) += sp.dur().as_ps();
        }
    }
    let mut folded: HashMap<String, u64> = HashMap::new();
    for sp in spans {
        let self_ps = sp
            .dur()
            .as_ps()
            .saturating_sub(child_ps.get(&sp.id).copied().unwrap_or(0));
        let mut names = vec![sp.name];
        if sp.kind == SpanKind::Scoped {
            let mut cur = sp.parent;
            for _ in 0..64 {
                let Some(parent) = by_id.get(&cur) else { break };
                names.push(parent.name);
                cur = parent.parent;
                if cur.is_none() {
                    break;
                }
            }
        }
        names.reverse();
        *folded.entry(names.join(";")).or_insert(0) += self_ps;
    }
    let mut lines: Vec<String> = folded
        .into_iter()
        .map(|(path, ps)| format!("{path} {}", ps / 1000))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn scoped(id: u64, parent: u64, name: &'static str, t0: f64, t1: f64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            cause: SpanId::NONE,
            source: Source::Machine,
            name,
            payload: SpanPayload::None,
            t_start: SimTime::from_us(t0),
            t_end: SimTime::from_us(t1),
            kind: SpanKind::Scoped,
        }
    }

    fn sample() -> (Vec<SpanRecord>, Vec<Event>, Vec<TickMetrics>) {
        let decision = SpanRecord {
            id: SpanId(3),
            parent: SpanId(2),
            cause: SpanId::NONE,
            source: Source::Colloid,
            name: "colloid.decide",
            payload: SpanPayload::Decision { mode: "demote" },
            t_start: SimTime::from_us(100.0),
            t_end: SimTime::from_us(100.0),
            kind: SpanKind::Scoped,
        };
        let migration = SpanRecord {
            id: SpanId(4),
            parent: SpanId(2),
            cause: SpanId(3),
            source: Source::Machine,
            name: "migration",
            payload: SpanPayload::Migration {
                vpn: 7,
                src: 0,
                dst: 1,
            },
            t_start: SimTime::from_us(101.0),
            t_end: SimTime::from_us(250.0),
            kind: SpanKind::Async,
        };
        let spans = vec![
            scoped(2, 1, "machine.tick", 0.0, 100.0),
            decision,
            migration,
            scoped(1, 0, "runner.tick", 0.0, 100.0),
        ];
        let events = vec![Event {
            t: SimTime::from_us(100.0),
            source: Source::Colloid,
            kind: EventKind::WatermarkMove {
                p_lo: 0.2,
                p_hi: 0.6,
                reset: false,
            },
        }];
        let metrics = vec![TickMetrics {
            ops_per_sec: 1e8,
            l_default_ns: Some(212.0),
            l_alternate_ns: None,
            migration_backlog: 5,
            ..TickMetrics::at(SimTime::from_us(100.0))
        }];
        (spans, events, metrics)
    }

    #[test]
    fn chrome_trace_round_trips_through_checker() {
        let (spans, events, metrics) = sample();
        let json = chrome_trace_json(&spans, &events, &metrics);
        let n = validate_chrome_trace(&json).expect("emitted trace must validate");
        // 6 metadata + 3 scoped X + 2 async b/e + 2 flow + 1 instant +
        // 3 counters (latency with one finite series, p, backlog).
        assert_eq!(n, 17);
        // Spot checks: async pair keyed by span id, flow arrow present,
        // counter args carry only the finite latency.
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"id\":\"4\""));
        assert!(json.contains("\"default\":212.0"));
        assert!(!json.contains("alternate"));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn checker_rejects_structural_violations() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(no_dur).unwrap_err().contains("dur"));
        let bad_ph = r#"{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad_ph).unwrap_err().contains("Z"));
        let unbalanced = r#"{"traceEvents":[
            {"name":"m","ph":"b","pid":1,"tid":0,"ts":1,"cat":"mig","id":"1"}]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unbalanced"));
        let stray_end = r#"{"traceEvents":[
            {"name":"m","ph":"e","pid":1,"tid":0,"ts":1,"cat":"mig","id":"1"}]}"#;
        assert!(validate_chrome_trace(stray_end)
            .unwrap_err()
            .contains("end without begin"));
        let orphan_flow = r#"{"traceEvents":[
            {"name":"c","ph":"f","pid":1,"tid":0,"ts":1,"cat":"cause","id":"9"}]}"#;
        assert!(validate_chrome_trace(orphan_flow)
            .unwrap_err()
            .contains("without start"));
        let bad_counter = r#"{"traceEvents":[
            {"name":"c","ph":"C","pid":1,"tid":0,"ts":1,"args":{"v":"high"}}]}"#;
        assert!(validate_chrome_trace(bad_counter)
            .unwrap_err()
            .contains("not numeric"));
    }

    #[test]
    fn folded_stacks_compute_self_time_along_parent_chains() {
        let (spans, _, _) = sample();
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        // machine.tick self = 100us - 0 (decision is instant) = 100_000 ns;
        // runner.tick self = 100us - 100us (child machine.tick) = 0;
        // the async migration folds as its own root.
        assert!(lines.contains(&"runner.tick;machine.tick 100000"));
        assert!(lines.contains(&"runner.tick 0"));
        assert!(lines.contains(&"migration 149000"));
        assert!(lines.contains(&"runner.tick;machine.tick;colloid.decide 0"));
    }

    #[test]
    fn empty_inputs_produce_valid_outputs() {
        let json = chrome_trace_json(&[], &[], &[]);
        assert_eq!(validate_chrome_trace(&json), Ok(6)); // metadata only
        assert_eq!(folded_stacks(&[]), "");
    }
}
