//! Derived analytics: convergence, migration efficiency, inversions.
//!
//! These operate on the raw streams after a run — they answer the questions
//! the paper's evaluation asks of each tiering system: *how fast does it
//! re-converge after a workload shift* (time-to-equilibrium), *how much of
//! its migration traffic was useful* (pages that ended somewhere new vs.
//! ping-pong work that was later undone), and *how long did it leave the
//! default tier slower than the alternate* (latency-inversion episodes).

use std::collections::HashMap;

use simkit::SimTime;

use crate::event::{Event, EventKind, Vpn};
use crate::metrics::TickMetrics;

/// Time from a workload shift until a signal settles at its new
/// equilibrium, judged over windows of `window` samples: equilibrium is the
/// mean of the final window, and the signal has converged once every
/// subsequent window mean stays within `tolerance` (relative) of it.
///
/// `shift_t` is the simulated time of the shift; samples at or before it
/// are ignored. A plateau of at least two stable windows is required, so a
/// lone final window passing through the target does not count. Returns
/// `None` when there are fewer than two post-shift windows, when no such
/// plateau exists, or when the equilibrium mean is not finite.
pub fn time_to_equilibrium(
    series: &[TickMetrics],
    shift_t: SimTime,
    window: usize,
    tolerance: f64,
    signal: impl Fn(&TickMetrics) -> f64,
) -> Option<SimTime> {
    if window == 0 || !tolerance.is_finite() || tolerance <= 0.0 {
        return None;
    }
    let post: Vec<&TickMetrics> = series.iter().filter(|m| m.t > shift_t).collect();
    let n_windows = post.len() / window;
    if n_windows < 2 {
        return None;
    }
    let mean = |w: usize| -> f64 {
        let chunk = &post[w * window..(w + 1) * window];
        chunk.iter().map(|m| signal(m)).sum::<f64>() / window as f64
    };
    let target = mean(n_windows - 1);
    if !target.is_finite() {
        return None;
    }
    let scale = target.abs().max(1e-12);
    // Walk back from the end: the last window violating the tolerance marks
    // the frontier; convergence begins at the window after it.
    let mut first_stable = 0;
    for w in (0..n_windows).rev() {
        if ((mean(w) - target) / scale).abs() > tolerance {
            first_stable = w + 1;
            break;
        }
    }
    if first_stable + 2 > n_windows {
        return None; // only the target window itself is stable: no plateau
    }
    // Converged at the first sample of the first stable window.
    let t_conv = post[first_stable * window].t;
    Some(t_conv.saturating_sub(shift_t))
}

/// Migration-efficiency accounting derived from the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationAccounting {
    /// Migrations the engine started.
    pub started: u64,
    /// Migrations that completed (mapping flipped).
    pub completed: u64,
    /// Completed migrations whose page genuinely ended on a different tier
    /// than it started the run on.
    pub useful: u64,
    /// Completed migrations later undone — ping-pong copies whose work was
    /// reverted by a subsequent move of the same page.
    pub wasted: u64,
    /// In-flight failures (outage or transient aborts).
    pub failed: u64,
    /// Retry-queue re-drives.
    pub retried: u64,
    /// Pages the retry queue gave up on.
    pub exhausted: u64,
}

impl MigrationAccounting {
    /// Fraction of completed copies that were useful (1.0 when no copies
    /// completed — nothing was wasted).
    pub fn efficiency(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.useful as f64 / self.completed as f64
        }
    }
}

/// Classifies every migration event in `events`.
///
/// Useful vs. wasted follows per-tier round trips over each page's actual
/// move history ([`crate::provenance::classify_round_trips`]): a copy is
/// wasted iff a later copy returns the page to a tier it had already
/// visited — net displacement along the tier chain decides. With two
/// tiers, consecutive completed moves of one page necessarily alternate
/// direction, so this degenerates to the historical rule `useful = c % 2`
/// (odd count ⇒ the page ended on the other tier).
pub fn migration_accounting(events: &[Event]) -> MigrationAccounting {
    let mut acc = MigrationAccounting::default();
    // Per page: source tier of the first completed copy, then every
    // destination in completion order.
    let mut completes: HashMap<Vpn, (u8, Vec<u8>)> = HashMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::MigrationStart { .. } => acc.started += 1,
            EventKind::MigrationComplete { vpn, src, dst, .. } => {
                acc.completed += 1;
                completes
                    .entry(*vpn)
                    .or_insert((*src, Vec::new()))
                    .1
                    .push(*dst);
            }
            EventKind::MigrationFail { .. } => acc.failed += 1,
            EventKind::MigrationRetry { .. } => acc.retried += 1,
            EventKind::RetryExhausted { .. } => acc.exhausted += 1,
            _ => {}
        }
    }
    for (_vpn, (first_src, dsts)) in completes {
        let useful = crate::provenance::classify_round_trips(first_src, &dsts)
            .iter()
            .filter(|&&w| !w)
            .count() as u64;
        acc.useful += useful;
        acc.wasted += dsts.len() as u64 - useful;
    }
    acc
}

/// Latency-inversion episode statistics: maximal runs of ticks where the
/// default tier's estimated loaded latency exceeded the alternate tier's.
#[derive(Debug, Clone, PartialEq)]
pub struct InversionStats {
    /// Number of maximal inversion episodes.
    pub episodes: usize,
    /// Total simulated time spent inverted.
    pub total: SimTime,
    /// Longest single episode.
    pub longest: SimTime,
    /// Histogram of episode durations in log2-millisecond buckets:
    /// `histogram[i]` counts episodes with duration in
    /// `[2^(i-1), 2^i)` ms (bucket 0 is `< 1 ms`).
    pub histogram: Vec<u64>,
}

impl InversionStats {
    /// Computes inversion episodes over a metric series. Episode duration
    /// is `ticks_in_episode × tick_duration`, where tick duration is taken
    /// from consecutive sample spacing.
    pub fn from_series(series: &[TickMetrics]) -> Self {
        let tick = if series.len() >= 2 {
            series[1].t.saturating_sub(series[0].t)
        } else {
            SimTime::ZERO
        };
        let mut stats = InversionStats {
            episodes: 0,
            total: SimTime::ZERO,
            longest: SimTime::ZERO,
            histogram: Vec::new(),
        };
        let mut run = 0u64;
        let close = |run: &mut u64, stats: &mut InversionStats| {
            if *run == 0 {
                return;
            }
            let dur = tick * *run;
            stats.episodes += 1;
            stats.total += dur;
            stats.longest = stats.longest.max(dur);
            let ms = dur.as_ns() / 1e6;
            let bucket = if ms < 1.0 {
                0
            } else {
                (ms.log2().floor() as usize) + 1
            };
            if stats.histogram.len() <= bucket {
                stats.histogram.resize(bucket + 1, 0);
            }
            stats.histogram[bucket] += 1;
            *run = 0;
        };
        for m in series {
            if m.latency_inverted() {
                run += 1;
            } else {
                close(&mut run, &mut stats);
            }
        }
        close(&mut run, &mut stats);
        stats
    }

    /// Fraction of the series' span spent inverted (0 for empty series).
    pub fn inverted_fraction(&self, series: &[TickMetrics]) -> f64 {
        if series.len() < 2 {
            return 0.0;
        }
        let span = series[series.len() - 1]
            .t
            .saturating_sub(series[0].t)
            .as_ns();
        if span <= 0.0 {
            0.0
        } else {
            (self.total.as_ns() / span).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn metric(t_ms: f64, ops: f64) -> TickMetrics {
        TickMetrics {
            ops_per_sec: ops,
            ..TickMetrics::at(SimTime::from_ms(t_ms))
        }
    }

    #[test]
    fn tte_finds_the_settling_point() {
        // Shift at t=10ms; signal is noisy-high until 50ms, then flat.
        let mut series = Vec::new();
        for i in 0..100 {
            let t = 10.0 + (i as f64 + 1.0) * 1.0; // 11ms..110ms
            let v = if t < 50.0 { 400.0 + i as f64 } else { 200.0 };
            series.push(metric(t, v));
        }
        let tte = time_to_equilibrium(&series, SimTime::from_ms(10.0), 10, 0.05, |m| m.ops_per_sec)
            .expect("converges");
        // Settles during the window covering 41..50ms; the first fully
        // stable window starts at 51ms => TTE = 41ms.
        assert_eq!(tte, SimTime::from_ms(41.0));
    }

    #[test]
    fn tte_none_when_never_stable() {
        let series: Vec<TickMetrics> = (0..40)
            .map(|i| metric(i as f64 + 1.0, if i % 2 == 0 { 100.0 } else { 900.0 }))
            .collect();
        // Adjacent window means swing wildly; 5-sample windows of an
        // alternating series actually average out, so use window 1.
        assert!(time_to_equilibrium(&series, SimTime::ZERO, 1, 0.05, |m| m.ops_per_sec).is_none());
    }

    #[test]
    fn tte_immediate_when_flat() {
        let series: Vec<TickMetrics> = (0..30).map(|i| metric(i as f64 + 1.0, 100.0)).collect();
        let tte = time_to_equilibrium(&series, SimTime::ZERO, 5, 0.02, |m| m.ops_per_sec).unwrap();
        assert_eq!(tte, SimTime::from_ms(1.0));
    }

    #[test]
    fn tte_rejects_degenerate_inputs() {
        let series: Vec<TickMetrics> = (0..30).map(|i| metric(i as f64, 1.0)).collect();
        assert!(time_to_equilibrium(&series, SimTime::ZERO, 0, 0.05, |m| m.ops_per_sec).is_none());
        assert!(
            time_to_equilibrium(&series, SimTime::ZERO, 5, f64::NAN, |m| m.ops_per_sec).is_none()
        );
        assert!(
            time_to_equilibrium(&series, SimTime::from_ms(28.0), 5, 0.05, |m| m.ops_per_sec)
                .is_none(),
            "fewer than two post-shift windows"
        );
    }

    fn mig_event(kind: EventKind) -> Event {
        Event {
            t: SimTime::ZERO,
            source: Source::Machine,
            kind,
        }
    }

    #[test]
    fn accounting_classifies_ping_pong() {
        // Page 1 moves once (useful). Page 2 moves twice (there and back:
        // both wasted). Page 3 moves three times (net one move: 1 useful,
        // 2 wasted).
        let mut events = Vec::new();
        let moves: &[(Vpn, u8, u8)] = &[
            (1, 0, 1),
            (2, 0, 1),
            (2, 1, 0),
            (3, 0, 1),
            (3, 1, 0),
            (3, 0, 1),
        ];
        for &(vpn, src, dst) in moves {
            events.push(mig_event(EventKind::MigrationStart { vpn, src, dst }));
            events.push(mig_event(EventKind::MigrationComplete {
                vpn,
                src,
                dst,
                copy_ns: 1000.0,
            }));
        }
        events.push(mig_event(EventKind::MigrationFail {
            vpn: 4,
            dst: 1,
            reason: crate::event::FailReason::Transient,
        }));
        events.push(mig_event(EventKind::MigrationRetry { vpn: 4, dst: 1 }));
        let acc = migration_accounting(&events);
        assert_eq!(acc.started, 6);
        assert_eq!(acc.completed, 6);
        assert_eq!(acc.useful, 2);
        assert_eq!(acc.wasted, 4);
        assert_eq!(acc.failed, 1);
        assert_eq!(acc.retried, 1);
        assert!((acc.efficiency() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_empty_is_fully_efficient() {
        let acc = migration_accounting(&[]);
        assert_eq!(acc.efficiency(), 1.0);
    }

    #[test]
    fn accounting_counts_net_displacement_across_three_tiers() {
        // Page 1 marches down the chain 0 -> 1 -> 2: both copies are real
        // displacement (the old two-tier rule would have called one of
        // them wasted). Page 2 detours 0 -> 1 -> 2 -> 1: only the first
        // hop survives the round trip through tier 2.
        let moves: &[(Vpn, u8, u8)] = &[(1, 0, 1), (1, 1, 2), (2, 0, 1), (2, 1, 2), (2, 2, 1)];
        let mut events = Vec::new();
        for &(vpn, src, dst) in moves {
            events.push(mig_event(EventKind::MigrationComplete {
                vpn,
                src,
                dst,
                copy_ns: 1000.0,
            }));
        }
        let acc = migration_accounting(&events);
        assert_eq!(acc.completed, 5);
        assert_eq!(acc.useful, 3);
        assert_eq!(acc.wasted, 2);
    }

    #[test]
    fn inversions_find_episodes_and_buckets() {
        // 1ms ticks; inverted on ticks 2-4 (3ms episode) and tick 8 (1ms).
        let mut series = Vec::new();
        for i in 0..10u64 {
            let inverted = (2..=4).contains(&i) || i == 8;
            let (d, a) = if inverted {
                (Some(200.0), Some(150.0))
            } else {
                (Some(150.0), Some(200.0))
            };
            series.push(TickMetrics {
                l_default_ns: d,
                l_alternate_ns: a,
                ..TickMetrics::at(SimTime::from_ms(i as f64))
            });
        }
        let stats = InversionStats::from_series(&series);
        assert_eq!(stats.episodes, 2);
        assert_eq!(stats.total, SimTime::from_ms(4.0));
        assert_eq!(stats.longest, SimTime::from_ms(3.0));
        // 3ms -> bucket floor(log2(3))+1 = 2; 1ms -> bucket 1.
        assert_eq!(stats.histogram, vec![0, 1, 1]);
        let frac = stats.inverted_fraction(&series);
        assert!((frac - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn inversions_empty_series() {
        let stats = InversionStats::from_series(&[]);
        assert_eq!(stats.episodes, 0);
        assert_eq!(stats.inverted_fraction(&[]), 0.0);
    }
}
