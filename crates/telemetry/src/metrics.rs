//! The per-quantum metric record: one row of the run's time series.

use simkit::SimTime;

/// Metrics distilled from one machine tick — the registry of per-quantum
/// signals the paper's figures are built from. Collected by the experiment
/// runner and recorded through a [`crate::Sink`].
///
/// Field names mirror the historical `TickSample` so downstream consumers
/// (figure drivers, degradation analysis) read the same names they always
/// did; the telemetry refactor widened the record with the true (per-
/// request-measured) latencies, occupancy/arrival-rate raw signals, and
/// the migration backlog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickMetrics {
    /// Simulated time at the end of the tick.
    pub t: SimTime,
    /// Application throughput over the tick (operations per second).
    pub ops_per_sec: f64,
    /// Default-tier Little's-Law latency (ns), if the tier saw traffic.
    pub l_default_ns: Option<f64>,
    /// Alternate-tier Little's-Law latency (ns).
    pub l_alternate_ns: Option<f64>,
    /// Default-tier measured per-request latency (ns) — ground truth,
    /// never perturbed by fault injection.
    pub true_l_default_ns: Option<f64>,
    /// Alternate-tier measured per-request latency (ns).
    pub true_l_alternate_ns: Option<f64>,
    /// Default-tier mean CHA occupancy over the tick (`O` in Little's Law).
    pub occupancy_default: f64,
    /// Alternate-tier mean CHA occupancy.
    pub occupancy_alternate: f64,
    /// Default-tier arrival rate, requests per ns (`R`).
    pub rate_default_per_ns: f64,
    /// Alternate-tier arrival rate, requests per ns.
    pub rate_alternate_per_ns: f64,
    /// Bytes migrated during the tick (migration bandwidth × duration).
    pub migrated_bytes: u64,
    /// Pages waiting in the migration queue at tick end.
    pub migration_backlog: u64,
    /// Application bytes served by the default tier during the tick.
    pub app_bytes_default: u64,
    /// Application bytes served by the alternate tier during the tick.
    pub app_bytes_alternate: u64,
}

impl TickMetrics {
    /// An all-idle record at time `t` (useful as a struct-update base).
    pub fn at(t: SimTime) -> Self {
        TickMetrics {
            t,
            ops_per_sec: 0.0,
            l_default_ns: None,
            l_alternate_ns: None,
            true_l_default_ns: None,
            true_l_alternate_ns: None,
            occupancy_default: 0.0,
            occupancy_alternate: 0.0,
            rate_default_per_ns: 0.0,
            rate_alternate_per_ns: 0.0,
            migrated_bytes: 0,
            migration_backlog: 0,
            app_bytes_default: 0,
            app_bytes_alternate: 0,
        }
    }

    /// Application bandwidth fraction served by the default tier this tick
    /// (0 when the tick saw no app traffic — never NaN).
    pub fn default_app_share(&self) -> f64 {
        let d = self.app_bytes_default as f64;
        let a = self.app_bytes_alternate as f64;
        if d + a <= 0.0 {
            0.0
        } else {
            d / (d + a)
        }
    }

    /// Whether the default tier measured slower than the alternate tier
    /// this tick (a latency inversion), judging by the Little's-Law
    /// estimates; `false` when either tier was idle.
    pub fn latency_inverted(&self) -> bool {
        match (self.l_default_ns, self.l_alternate_ns) {
            (Some(d), Some(a)) => d > a,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_share_is_zero_not_nan() {
        let m = TickMetrics::at(SimTime::ZERO);
        assert_eq!(m.default_app_share(), 0.0);
        assert!(m.default_app_share().is_finite());
    }

    #[test]
    fn share_splits_bytes() {
        let m = TickMetrics {
            app_bytes_default: 192,
            app_bytes_alternate: 64,
            ..TickMetrics::at(SimTime::ZERO)
        };
        assert!((m.default_app_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn inversion_requires_both_tiers_busy() {
        let mut m = TickMetrics::at(SimTime::ZERO);
        assert!(!m.latency_inverted());
        m.l_default_ns = Some(200.0);
        assert!(!m.latency_inverted());
        m.l_alternate_ns = Some(150.0);
        assert!(m.latency_inverted());
        m.l_alternate_ns = Some(250.0);
        assert!(!m.latency_inverted());
    }
}
