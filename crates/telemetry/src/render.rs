//! Plain-text rendering of metric series and event timelines.
//!
//! [`series`] is the canonical ASCII series renderer (the figure drivers in
//! `crates/experiments` delegate here — its output is pinned byte-for-byte
//! by the golden tests). [`event_log`] renders a typed event stream as a
//! one-line-per-event timeline for the `timeline` binary.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};

/// Renders a compact ASCII time series: one `t: value` line per sample
/// bucket, downsampled to at most `max_lines` lines.
pub fn series(label: &str, points: &[(f64, f64)], max_lines: usize) -> String {
    let mut out = format!("-- {label} --\n");
    if points.is_empty() {
        out.push_str("(empty)\n");
        return out;
    }
    let stride = points.len().div_ceil(max_lines).max(1);
    for chunk in points.chunks(stride) {
        let t = chunk[0].0;
        let mean = chunk.iter().map(|p| p.1).sum::<f64>() / chunk.len() as f64;
        let _ = writeln!(out, "t={t:8.2}ms  {mean:12.2}");
    }
    out
}

/// One human-readable line describing an event's payload.
pub fn describe_event(ev: &Event) -> String {
    match &ev.kind {
        EventKind::MigrationStart { vpn, src, dst } => {
            format!("vpn {vpn} tier {src} -> {dst}")
        }
        EventKind::MigrationComplete {
            vpn,
            src,
            dst,
            copy_ns,
        } => format!("vpn {vpn} tier {src} -> {dst} ({copy_ns:.0} ns)"),
        EventKind::MigrationFail { vpn, dst, reason } => {
            format!("vpn {vpn} -> tier {dst} ({})", reason.name())
        }
        EventKind::MigrationRetry { vpn, dst } => format!("vpn {vpn} -> tier {dst}"),
        EventKind::TxnDirty { vpn, attempt } => {
            format!("vpn {vpn} snapshot dirtied on pass {attempt}")
        }
        EventKind::TxnFailover {
            vpn,
            from_channel,
            to_channel,
        } => format!("vpn {vpn} channel {from_channel} -> {to_channel}"),
        EventKind::BatchCommit { pages, cost_ns } => {
            format!("{pages} pages under one shootdown ({cost_ns:.0} ns)")
        }
        EventKind::RetryExhausted { vpn, dst } => format!("vpn {vpn} -> tier {dst} abandoned"),
        EventKind::WatermarkMove { p_lo, p_hi, reset } => {
            if *reset {
                format!("reset to [{p_lo:.3}, {p_hi:.3}]")
            } else {
                format!("[{p_lo:.3}, {p_hi:.3}]")
            }
        }
        EventKind::PUpdate {
            p,
            l_default_ns,
            l_alternate_ns,
            mode,
            delta_p,
            byte_limit,
        } => format!(
            "p={p:.3} l_def={l_default_ns:.0}ns l_alt={l_alternate_ns:.0}ns \
             {mode} dp={delta_p:.4} limit={byte_limit}B"
        ),
        EventKind::ModeTransition { from, to } => format!("{from} -> {to}"),
        EventKind::ProbeSent { vpn } => format!("canary vpn {vpn}"),
        EventKind::FaultsInjected {
            noisy,
            stale,
            dropped,
            migration_failures,
            pebs_dropped,
            evacuated,
            outage_aborts,
            storm_dirties,
        } => {
            let mut parts = Vec::new();
            for (label, n) in [
                ("noisy", *noisy),
                ("stale", *stale),
                ("drop", *dropped),
                ("mig", *migration_failures),
                ("pebs", *pebs_dropped),
                ("evac", *evacuated),
                ("outage", *outage_aborts),
                ("storm", *storm_dirties),
            ] {
                if n > 0 {
                    parts.push(format!("{label} {n}"));
                }
            }
            parts.join(" ")
        }
        EventKind::TierEvacuation { pages } => format!("{pages} pages"),
        EventKind::WorkloadShift { what } => what.clone(),
        EventKind::EquilibriumReset => String::new(),
    }
}

/// Renders events as a timeline, one line each:
/// `t=  12.30ms  colloid     p_update           p=0.250 ...`.
///
/// When there are more events than `max_lines`, the log is downsampled by
/// stride (first event of each chunk shown) and a trailing note says how
/// many were elided.
pub fn event_log(events: &[Event], max_lines: usize) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("(no events)\n");
        return out;
    }
    let stride = events.len().div_ceil(max_lines.max(1)).max(1);
    let mut shown = 0usize;
    for chunk in events.chunks(stride) {
        let ev = &chunk[0];
        let _ = writeln!(
            out,
            "t={:9.3}ms  {:<10}  {:<18} {}",
            ev.t.as_ns() / 1e6,
            ev.source.name(),
            ev.kind.name(),
            describe_event(ev)
        );
        shown += 1;
    }
    if shown < events.len() {
        let _ = writeln!(out, "({} of {} events shown)", shown, events.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;
    use simkit::SimTime;

    #[test]
    fn series_matches_historical_format() {
        let pts: Vec<(f64, f64)> = (0..4).map(|i| (i as f64, 10.0 * i as f64)).collect();
        let s = series("demo", &pts, 10);
        let expected = format!(
            "-- demo --\n{}{}{}{}",
            "t=    0.00ms          0.00\n",
            "t=    1.00ms         10.00\n",
            "t=    2.00ms         20.00\n",
            "t=    3.00ms         30.00\n"
        );
        assert_eq!(s, expected);
    }

    #[test]
    fn series_downsamples_and_handles_empty() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        assert!(series("x", &pts, 10).lines().count() <= 11);
        assert!(series("x", &[], 5).contains("(empty)"));
    }

    #[test]
    fn event_log_lines_and_elision() {
        let events: Vec<Event> = (0..10)
            .map(|i| Event {
                t: SimTime::from_ms(i as f64),
                source: Source::Supervisor,
                kind: EventKind::ModeTransition {
                    from: "normal",
                    to: "frozen",
                },
            })
            .collect();
        let full = event_log(&events, 20);
        assert_eq!(full.lines().count(), 10);
        assert!(full.contains("normal -> frozen"));
        let trimmed = event_log(&events, 5);
        assert!(trimmed.lines().count() <= 6);
        assert!(trimmed.contains("events shown"));
        assert_eq!(event_log(&[], 5), "(no events)\n");
    }
}
