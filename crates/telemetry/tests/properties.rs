//! Property-based tests for the telemetry recorder.
//!
//! The contracts underwriting the subsystem: the [`RingRecorder`] holds
//! bounded state no matter how long a run gets (drop-oldest, with every
//! drop counted); event timestamps are monotone **per source** however
//! the layers interleave their emits; scoped spans nest correctly under
//! arbitrary enter/exit sequences (children close before their parent,
//! extents contained, stamps monotone); and per-page provenance conserves
//! pages per tier (the `c % 2` useful rule is exactly tier conservation).

use proptest::prelude::*;
use simkit::SimTime;
use telemetry::{
    Event, EventKind, Recorder, RingRecorder, Sink, Source, SpanId, SpanKind, SpanPayload,
    SpanRecord, TickMetrics,
};

fn source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::Machine),
        Just(Source::Colloid),
        Just(Source::System),
        Just(Source::Supervisor),
        Just(Source::Runner),
    ]
}

/// An arbitrary recorder operation: an event (with possibly out-of-order
/// timestamp) or a metric row.
fn op() -> impl Strategy<Value = (bool, u64, Source)> {
    (prop::bool::ANY, 0u64..10_000, source())
}

fn event_at(t_ps: u64, src: Source) -> Event {
    Event {
        t: SimTime::from_ps(t_ps),
        source: src,
        kind: EventKind::EquilibriumReset,
    }
}

proptest! {
    /// Bounded memory: whatever the input volume, retained counts never
    /// exceed the caps, and retained + dropped always accounts for every
    /// record offered.
    #[test]
    fn ring_is_bounded_and_accounts_for_drops(
        event_cap in 0usize..32,
        metric_cap in 0usize..8,
        ops in prop::collection::vec(op(), 0..200)
    ) {
        let mut rec = RingRecorder::new(event_cap, metric_cap);
        let mut offered_events = 0u64;
        let mut offered_metrics = 0u64;
        for (is_event, t_ps, src) in ops {
            if is_event {
                rec.record_event(event_at(t_ps, src));
                offered_events += 1;
            } else {
                rec.record_metrics(TickMetrics::at(SimTime::from_ps(t_ps)));
                offered_metrics += 1;
            }
            prop_assert!(rec.event_len() <= event_cap);
            prop_assert!(rec.metric_len() <= metric_cap);
        }
        prop_assert_eq!(rec.events().len() as u64 + rec.dropped_events(), offered_events);
        prop_assert_eq!(rec.metrics().len() as u64 + rec.dropped_metrics(), offered_metrics);
    }

    /// Drop-oldest: the retained window is exactly the tail of the offered
    /// sequence (checked on a single source so clamping is irrelevant to
    /// identity: events are distinguished by monotone timestamps).
    #[test]
    fn ring_retains_the_newest_tail(
        cap in 1usize..16,
        n in 0usize..64
    ) {
        let mut rec = RingRecorder::new(cap, 0);
        for i in 0..n as u64 {
            rec.record_event(event_at(i, Source::Machine));
        }
        let kept: Vec<u64> = rec.events().iter().map(|e| e.t.as_ps()).collect();
        let expected: Vec<u64> = (0..n as u64).skip(n.saturating_sub(cap)).collect();
        prop_assert_eq!(kept, expected);
    }

    /// Per-source monotonicity: under arbitrary interleavings with
    /// arbitrary (even decreasing) stamps, each source's recorded
    /// timestamps never decrease, and clamping never *advances* an event
    /// past a later stamp the source itself provided.
    #[test]
    fn timestamps_are_monotone_per_source(
        ops in prop::collection::vec((0u64..1000, source()), 0..300)
    ) {
        let mut rec = RingRecorder::new(usize::MAX >> 1, 0);
        for &(t_ps, src) in &ops {
            rec.record_event(event_at(t_ps, src));
        }
        let events = rec.events();
        prop_assert_eq!(events.len(), ops.len());
        let mut last = [None::<u64>; Source::COUNT];
        for ev in &events {
            let slot = &mut last[ev.source.index()];
            if let Some(prev) = *slot {
                prop_assert!(ev.t.as_ps() >= prev, "source went backwards");
            }
            *slot = Some(ev.t.as_ps());
        }
        // The clamp is the running max of each source's own input stamps.
        let mut running = [0u64; Source::COUNT];
        for (i, &(t_ps, src)) in ops.iter().enumerate() {
            running[src.index()] = running[src.index()].max(t_ps);
            prop_assert_eq!(events[i].t.as_ps(), running[src.index()]);
        }
    }

    /// Scoped spans nest correctly under arbitrary enter/exit sequences:
    /// children are recorded (closed) before their parent, every child's
    /// extent is contained in its parent's, and close stamps are monotone.
    /// Exits may target a span deep in the stack — the sink must close the
    /// forgotten spans above it rather than corrupt the stack.
    #[test]
    fn scoped_spans_nest_and_close_child_first(
        ops in prop::collection::vec((0u64..1_000, 0usize..3, 0usize..4), 0..200)
    ) {
        const NAMES: [&str; 4] = ["a", "b", "c", "d"];
        let sink = Sink::new(Box::new(RingRecorder::new(1 << 12, 0).with_span_cap(1 << 12)));
        let mut now = 0u64;
        let mut stack: Vec<SpanId> = Vec::new();
        let mut expected_closed = 0usize;
        for (adv, op, idx) in ops {
            now += adv;
            sink.set_now(SimTime::from_ps(now));
            match op {
                0 => {
                    let id = sink.span_enter(Source::Machine, NAMES[idx]);
                    prop_assert!(id.is_some());
                    stack.push(id);
                }
                1 => {
                    if let Some(id) = stack.pop() {
                        sink.span_exit(id);
                        expected_closed += 1;
                    }
                }
                _ => {
                    if !stack.is_empty() {
                        let k = idx % stack.len();
                        sink.span_exit(stack[k]);
                        // Everything at and above the target closes.
                        expected_closed += stack.len() - k;
                        stack.truncate(k);
                    }
                }
            }
        }
        let spans = sink.with(|r| r.spans()).unwrap();
        prop_assert_eq!(spans.len(), expected_closed);
        for w in spans.windows(2) {
            prop_assert!(w[1].t_end >= w[0].t_end, "close stamps must be monotone");
        }
        for (i, sp) in spans.iter().enumerate() {
            prop_assert_eq!(sp.kind, SpanKind::Scoped);
            prop_assert!(sp.t_end >= sp.t_start);
            if sp.parent.is_some() {
                // A recorded child's parent either closed later (appears
                // after it) or is still open (never recorded).
                if let Some(pi) = spans.iter().position(|p| p.id == sp.parent) {
                    prop_assert!(pi > i, "child must be recorded before its parent");
                    prop_assert!(sp.t_start >= spans[pi].t_start);
                    prop_assert!(sp.t_end <= spans[pi].t_end);
                }
            }
        }
    }

    /// Provenance conserves pages per tier: with every page starting in
    /// tier 0 and copies alternating 0→1→0→…, a page ends in tier 1 iff
    /// its move count is odd — exactly the `c % 2` useful rule — and the
    /// blame tallies account for every completed copy.
    #[test]
    fn provenance_conserves_pages_per_tier(
        move_counts in prop::collection::vec(0usize..6, 1..40)
    ) {
        let decision = SpanRecord {
            id: SpanId(1),
            parent: SpanId::NONE,
            cause: SpanId::NONE,
            source: Source::Colloid,
            name: "colloid.decide",
            payload: SpanPayload::Decision { mode: "promote" },
            t_start: SimTime::ZERO,
            t_end: SimTime::ZERO,
            kind: SpanKind::Scoped,
        };
        let mut spans = vec![decision];
        let mut next_id = 2u64;
        let mut t_us = 1.0f64;
        for (vpn, &c) in move_counts.iter().enumerate() {
            for k in 0..c {
                let dst = u8::from(k % 2 == 0); // 0 -> 1 -> 0 -> ...
                spans.push(SpanRecord {
                    id: SpanId(next_id),
                    parent: SpanId::NONE,
                    cause: SpanId(1),
                    source: Source::Machine,
                    name: "migration",
                    payload: SpanPayload::Migration {
                        vpn: vpn as u64,
                        src: 1 - dst,
                        dst,
                    },
                    t_start: SimTime::from_us(t_us),
                    t_end: SimTime::from_us(t_us + 0.5),
                    kind: SpanKind::Async,
                });
                next_id += 1;
                t_us += 100.0;
            }
        }
        let r = telemetry::provenance(&[], &spans, SimTime::from_us(1.0));
        let total: usize = move_counts.iter().sum();
        let odd = move_counts.iter().filter(|&&c| c % 2 == 1).count();
        prop_assert_eq!(r.completed as usize, total);
        prop_assert_eq!(r.useful as usize, odd, "useful copies = pages ending off-default");
        prop_assert_eq!(r.wasted as usize, total - odd);
        let in_tier1 = r.pages.iter().filter(|p| p.final_tier() == 1).count();
        prop_assert_eq!(in_tier1, odd, "tier-1 population must equal odd-count pages");
        prop_assert_eq!(
            r.pages.len(),
            move_counts.iter().filter(|&&c| c > 0).count(),
            "every migrated page (and only those) gets a history"
        );
        for p in &r.pages {
            prop_assert_eq!((p.useful() + p.wasted()) as usize, p.moves.len());
            prop_assert_eq!(
                p.moves.iter().filter(|m| m.wasted).count() as u64,
                p.wasted(),
                "per-move wasted flags must sum to the page's wasted count"
            );
        }
        let blamed: u64 = r.blame.iter().map(|b| b.issued).sum();
        prop_assert_eq!(blamed + r.unattributed, r.completed);
        prop_assert_eq!(r.unattributed, 0, "all moves carry a resolvable cause here");
    }

    /// Metric rows are kept verbatim in order (no clamping applies).
    #[test]
    fn metrics_kept_in_arrival_order(
        cap in 1usize..16,
        stamps in prop::collection::vec(0u64..1000, 0..64)
    ) {
        let mut rec = RingRecorder::new(0, cap);
        for &t in &stamps {
            rec.record_metrics(TickMetrics::at(SimTime::from_ps(t)));
        }
        let kept: Vec<u64> = rec.metrics().iter().map(|m| m.t.as_ps()).collect();
        let expected: Vec<u64> = stamps
            .iter()
            .skip(stamps.len().saturating_sub(cap))
            .copied()
            .collect();
        prop_assert_eq!(kept, expected);
    }
}
