//! Property-based tests for the telemetry recorder.
//!
//! Two contracts underwrite the subsystem: the [`RingRecorder`] holds
//! bounded state no matter how long a run gets (drop-oldest, with every
//! drop counted), and event timestamps are monotone **per source** however
//! the layers interleave their emits. Both are exercised over arbitrary
//! event interleavings here.

use proptest::prelude::*;
use simkit::SimTime;
use telemetry::{Event, EventKind, Recorder, RingRecorder, Source, TickMetrics};

fn source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::Machine),
        Just(Source::Colloid),
        Just(Source::System),
        Just(Source::Supervisor),
        Just(Source::Runner),
    ]
}

/// An arbitrary recorder operation: an event (with possibly out-of-order
/// timestamp) or a metric row.
fn op() -> impl Strategy<Value = (bool, u64, Source)> {
    (prop::bool::ANY, 0u64..10_000, source())
}

fn event_at(t_ps: u64, src: Source) -> Event {
    Event {
        t: SimTime::from_ps(t_ps),
        source: src,
        kind: EventKind::EquilibriumReset,
    }
}

proptest! {
    /// Bounded memory: whatever the input volume, retained counts never
    /// exceed the caps, and retained + dropped always accounts for every
    /// record offered.
    #[test]
    fn ring_is_bounded_and_accounts_for_drops(
        event_cap in 0usize..32,
        metric_cap in 0usize..8,
        ops in prop::collection::vec(op(), 0..200)
    ) {
        let mut rec = RingRecorder::new(event_cap, metric_cap);
        let mut offered_events = 0u64;
        let mut offered_metrics = 0u64;
        for (is_event, t_ps, src) in ops {
            if is_event {
                rec.record_event(event_at(t_ps, src));
                offered_events += 1;
            } else {
                rec.record_metrics(TickMetrics::at(SimTime::from_ps(t_ps)));
                offered_metrics += 1;
            }
            prop_assert!(rec.event_len() <= event_cap);
            prop_assert!(rec.metric_len() <= metric_cap);
        }
        prop_assert_eq!(rec.events().len() as u64 + rec.dropped_events(), offered_events);
        prop_assert_eq!(rec.metrics().len() as u64 + rec.dropped_metrics(), offered_metrics);
    }

    /// Drop-oldest: the retained window is exactly the tail of the offered
    /// sequence (checked on a single source so clamping is irrelevant to
    /// identity: events are distinguished by monotone timestamps).
    #[test]
    fn ring_retains_the_newest_tail(
        cap in 1usize..16,
        n in 0usize..64
    ) {
        let mut rec = RingRecorder::new(cap, 0);
        for i in 0..n as u64 {
            rec.record_event(event_at(i, Source::Machine));
        }
        let kept: Vec<u64> = rec.events().iter().map(|e| e.t.as_ps()).collect();
        let expected: Vec<u64> = (0..n as u64).skip(n.saturating_sub(cap)).collect();
        prop_assert_eq!(kept, expected);
    }

    /// Per-source monotonicity: under arbitrary interleavings with
    /// arbitrary (even decreasing) stamps, each source's recorded
    /// timestamps never decrease, and clamping never *advances* an event
    /// past a later stamp the source itself provided.
    #[test]
    fn timestamps_are_monotone_per_source(
        ops in prop::collection::vec((0u64..1000, source()), 0..300)
    ) {
        let mut rec = RingRecorder::new(usize::MAX >> 1, 0);
        for &(t_ps, src) in &ops {
            rec.record_event(event_at(t_ps, src));
        }
        let events = rec.events();
        prop_assert_eq!(events.len(), ops.len());
        let mut last = [None::<u64>; Source::COUNT];
        for ev in &events {
            let slot = &mut last[ev.source.index()];
            if let Some(prev) = *slot {
                prop_assert!(ev.t.as_ps() >= prev, "source went backwards");
            }
            *slot = Some(ev.t.as_ps());
        }
        // The clamp is the running max of each source's own input stamps.
        let mut running = [0u64; Source::COUNT];
        for (i, &(t_ps, src)) in ops.iter().enumerate() {
            running[src.index()] = running[src.index()].max(t_ps);
            prop_assert_eq!(events[i].t.as_ps(), running[src.index()]);
        }
    }

    /// Metric rows are kept verbatim in order (no clamping applies).
    #[test]
    fn metrics_kept_in_arrival_order(
        cap in 1usize..16,
        stamps in prop::collection::vec(0u64..1000, 0..64)
    ) {
        let mut rec = RingRecorder::new(0, cap);
        for &t in &stamps {
            rec.record_metrics(TickMetrics::at(SimTime::from_ps(t)));
        }
        let kept: Vec<u64> = rec.metrics().iter().map(|m| m.t.as_ps()).collect();
        let expected: Vec<u64> = stamps
            .iter()
            .skip(stamps.len().saturating_sub(cap))
            .copied()
            .collect();
        prop_assert_eq!(kept, expected);
    }
}
