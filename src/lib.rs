//! Umbrella crate for the Colloid reproduction workspace.
//!
//! This crate re-exports the workspace's public crates so that the
//! repository-level examples (`examples/`) and integration tests (`tests/`)
//! can exercise the whole stack through one dependency. See `README.md` for
//! an architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! The layering, bottom to top:
//!
//! 1. [`simkit`] — discrete-event simulation kernel (clock, events, RNG,
//!    statistics).
//!    [`telemetry`] sits beside it: the structured observability layer
//!    (typed events, bounded recorders, per-quantum metrics, exporters,
//!    convergence analytics) that every higher layer emits into — and
//!    that, disabled or enabled, never changes simulated behaviour
//!    (DESIGN.md §10).
//! 2. [`memsim`] — the tiered-memory hardware model: cores with bounded
//!    memory-level parallelism, CHA with occupancy/arrival counters, per-tier
//!    memory controllers (channels × banks), and interconnect links.
//! 3. [`tierctl`] — the page-management substrate: placement maps, the
//!    migration engine, and access-tracking primitives (PEBS-style sampling,
//!    page-table scanning with hint faults).
//! 4. [`colloid`] — the paper's contribution: per-tier access-latency
//!    measurement via Little's Law + EWMA, and the balancing-access-latencies
//!    page-placement algorithm (Algorithms 1 and 2).
//! 5. [`tiersys`] — HeMem, TPP, and MEMTIS reimplementations, each with a
//!    Colloid-integrated variant.
//! 6. [`workloads`] — GUPS, the memory antagonist, and the three
//!    application-shaped workloads (GAPBS PageRank, Silo YCSB-C, CacheLib).
//! 7. [`experiments`] — the evaluation harness that regenerates every figure
//!    of the paper.

pub use colloid;
pub use experiments;
pub use memsim;
pub use simkit;
pub use telemetry;
pub use tierctl;
pub use tiersys;
pub use workloads;
