//! Cross-crate validation of the measurement pipeline: the Little's-Law
//! latency estimates that drive Colloid must agree with the simulator's
//! ground-truth per-request latencies across workload shapes — the in-depth
//! validation the paper cites from "Understanding the Host Network"
//! (SIGCOMM '24).

use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use memsim::{CoreConfig, Machine, MachineConfig, TierId, TrafficClass};
use simkit::SimTime;
use tiersys::SystemKind;
use workloads::{
    GupsConfig, GupsStream, KvCacheConfig, KvCacheStream, PageRankConfig, PageRankStream,
    SiloConfig, SiloStream,
};

/// Runs a machine for a while and asserts the CHA-derived latency matches
/// the measured per-request latency within `tol` on every busy tier.
fn assert_littles_law(machine: &mut Machine, tol: f64, label: &str) {
    machine.run_tick(SimTime::from_us(100.0)); // warm up
    let rep = machine.run_tick(SimTime::from_us(400.0));
    for tier in [TierId::DEFAULT, TierId::ALTERNATE] {
        let est = rep.littles_latency_ns(tier);
        let truth = rep.true_latency_ns[tier.index()];
        if let (Some(est), Some(truth)) = (est, truth) {
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < tol,
                "{label}: tier {tier:?} Little's law {est:.1} ns vs true {truth:.1} ns ({rel:.3})"
            );
        }
    }
}

/// A machine with the first 16 K pages in the default tier (the caller
/// places the rest).
fn two_tier_machine() -> Machine {
    let mut m = Machine::new(MachineConfig::icelake_two_tier());
    m.place_range(0..8_192, TierId::DEFAULT);
    m.place_range(8_192..16_384, TierId::ALTERNATE);
    m
}

#[test]
fn littles_law_holds_for_gups() {
    let mut m = two_tier_machine();
    m.place_range(16_384..32_768, TierId::ALTERNATE);
    let mut cfg = GupsConfig::paper_default(0);
    cfg.ws_pages = 32_768;
    cfg.hot_pages = 8_192;
    cfg.hot_offset = 12_288; // straddles both tiers
    for _ in 0..10 {
        m.add_core(
            Box::new(GupsStream::new(cfg.clone()).unwrap()),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }
    assert_littles_law(&mut m, 0.08, "gups");
}

#[test]
fn littles_law_holds_for_pagerank() {
    let mut m = two_tier_machine();
    m.place_range(16_384..32_768, TierId::ALTERNATE);
    let cfg = PageRankConfig::paper_default(0);
    for i in 0..10 {
        m.add_core(
            Box::new(PageRankStream::new(cfg.clone(), i)),
            CoreConfig::default(),
            TrafficClass::App,
        );
    }
    assert_littles_law(&mut m, 0.08, "pagerank");
}

#[test]
fn littles_law_holds_for_silo() {
    let mut m = two_tier_machine();
    m.place_range(16_384..32_768, TierId::ALTERNATE);
    let cfg = SiloConfig::paper_default(0);
    for _ in 0..10 {
        m.add_core(
            Box::new(SiloStream::new(cfg.clone())),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }
    assert_littles_law(&mut m, 0.08, "silo");
}

#[test]
fn littles_law_holds_for_kvcache() {
    let mut m = two_tier_machine();
    m.place_range(16_384..32_768, TierId::ALTERNATE);
    let cfg = KvCacheConfig::paper_default(0);
    for _ in 0..10 {
        m.add_core(
            Box::new(KvCacheStream::new(cfg.clone())),
            CoreConfig {
                demand_slots: 4,
                prefetch_slots: 30,
                think_time: SimTime::ZERO,
            },
            TrafficClass::App,
        );
    }
    assert_littles_law(&mut m, 0.08, "kvcache");
}

#[test]
fn tier_bandwidth_accounting_is_consistent() {
    // App + antagonist + migration bytes must all be attributed, and only
    // to the tiers that actually carry them.
    let scenario = GupsScenario::intensity(1);
    let mut e = build_gups(
        &scenario,
        Policy::System {
            kind: SystemKind::Hemem,
            colloid: true,
        },
    );
    let rc = RunConfig {
        min_warmup_ticks: 80,
        max_warmup_ticks: 80,
        measure_ticks: 40,
        window: 40,
        tolerance: 0.0,
        collect_series: false,
    };
    let r = run(&mut e, &rc);
    let app = TrafficClass::App.index();
    let ant = TrafficClass::Antagonist.index();
    // The application touches both tiers.
    assert!(r.bytes_by_tier_class[0][app] > 0);
    assert!(r.bytes_by_tier_class[1][app] > 0);
    // The antagonist's buffer is pinned to the default tier.
    assert!(r.bytes_by_tier_class[0][ant] > 0);
    assert_eq!(r.bytes_by_tier_class[1][ant], 0);
}
