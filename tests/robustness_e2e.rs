//! End-to-end robustness: the full stack survives combined fault injection.
//!
//! Every tiering system (± Colloid) runs GUPS under the combined fault
//! plan of `experiments::robustness::combined_faults` — 20 % counter
//! noise, 5 % transient migration failures, and a mid-run
//! migration-bandwidth collapse — and must come out the other side with:
//!
//! - no panics anywhere in the stack,
//! - a finite, positive `RunResult` (no NaN reaches the report layer),
//! - zero permanently-dropped migrations (every injected failure is
//!   retried until it lands or becomes moot),
//! - for Colloid, throughput within a stated band of the fault-free run.

use experiments::robustness::combined_faults;
use experiments::runner::{run, RunConfig, RunResult};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use simkit::SimTime;
use tiersys::SystemKind;

/// Contention level for the robustness runs (2×: placement matters).
const INTENSITY: usize = 2;

fn rc() -> RunConfig {
    RunConfig {
        min_warmup_ticks: 100,
        max_warmup_ticks: 250,
        measure_ticks: 50,
        window: 40,
        tolerance: 0.03,
        collect_series: false,
    }
}

fn run_gups(kind: SystemKind, colloid: bool, faulty: bool) -> RunResult {
    let mut sc = GupsScenario::intensity(INTENSITY);
    if faulty {
        sc.faults = combined_faults(SimTime::from_us(100.0));
    }
    let mut exp = build_gups(&sc, Policy::System { kind, colloid });
    run(&mut exp, &rc())
}

fn assert_sane(r: &RunResult, what: &str) {
    assert!(
        r.ops_per_sec.is_finite() && r.ops_per_sec > 0.0,
        "{what}: ops/s = {}",
        r.ops_per_sec
    );
    for (tier, l) in [("default", r.l_default_ns), ("alternate", r.l_alternate_ns)] {
        if let Some(l) = l {
            assert!(l.is_finite() && l >= 0.0, "{what}: L_{tier} = {l}");
        }
    }
    assert!(r.default_tier_app_share().is_finite(), "{what}: app share");
}

#[test]
fn every_system_survives_combined_faults() {
    for kind in SystemKind::ALL {
        for colloid in [false, true] {
            let what = format!("{:?} colloid={colloid}", kind);
            let r = run_gups(kind, colloid, true);
            assert_sane(&r, &what);
            // Faults were actually injected …
            assert!(r.fault_stats.total() > 0, "{what}: nothing injected");
            assert!(
                r.fault_stats.migration_failures > 0,
                "{what}: no migration failures at 5% over a full run"
            );
            // … and every failed migration was retried rather than lost.
            // (`scheduled` can trail the failure count slightly: a fresh
            // placement request for the same page coalesces with a pending
            // failure retry.)
            let retry = r.retry_stats.expect("system drives a retry queue");
            assert!(
                retry.scheduled > 0,
                "{what}: {} failures but no retries scheduled",
                r.fault_stats.migration_failures
            );
            assert_eq!(
                retry.dropped, 0,
                "{what}: {} migrations permanently dropped",
                retry.dropped
            );
        }
    }
}

#[test]
fn colloid_throughput_holds_up_under_faults() {
    // The stated band: with hardened controllers, combined faults may cost
    // HeMem+Colloid at most 30 % of its fault-free throughput (and noisy
    // counters cannot conjure more than 15 % out of thin air).
    let clean = run_gups(SystemKind::Hemem, true, false);
    let faulty = run_gups(SystemKind::Hemem, true, true);
    assert_sane(&clean, "fault-free");
    let rel = faulty.ops_per_sec / clean.ops_per_sec;
    assert!(
        (0.7..=1.15).contains(&rel),
        "HeMem+Colloid under faults at {rel:.3}x of fault-free ({:.1} vs {:.1} Mops/s)",
        faulty.ops_per_sec / 1e6,
        clean.ops_per_sec / 1e6
    );
}

#[test]
fn combined_fault_runs_are_deterministic() {
    let a = run_gups(SystemKind::Hemem, true, true);
    let b = run_gups(SystemKind::Hemem, true, true);
    assert_eq!(a.ops_per_sec.to_bits(), b.ops_per_sec.to_bits());
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.retry_stats, b.retry_stats);
    assert_eq!(a.warmup_ticks_used, b.warmup_ticks_used);
}
