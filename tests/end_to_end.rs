//! End-to-end integration tests spanning the whole stack: workload →
//! machine → tiering system → Colloid controller → migration engine.
//!
//! These check the paper's *headline shapes* on reduced-size runs (the
//! full-scale regenerations live in `experiments`' binaries):
//!
//! - under memory interconnect contention, Colloid recovers most of the
//!   gap between the packing systems and the best case (Figures 1/5);
//! - without contention, Colloid matches the vanilla systems (Figure 5);
//! - the best-case hot-set split moves out of the default tier as
//!   contention rises (Figure 2b);
//! - dynamic changes are re-converged (Figure 9).

use experiments::oracle::best_case_over;
use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use memsim::TierId;
use simkit::SimTime;
use tiersys::SystemKind;

fn quick_rc() -> RunConfig {
    RunConfig {
        min_warmup_ticks: 120,
        max_warmup_ticks: 450,
        measure_ticks: 60,
        window: 40,
        tolerance: 0.02,
        collect_series: false,
    }
}

#[test]
fn colloid_beats_vanilla_under_contention() {
    let scenario = GupsScenario::intensity(3);
    let vanilla = {
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: false,
            },
        );
        // The packing systems converge slowly towards their (bad) steady
        // state; give the vanilla run a full warm-up.
        let mut rc = quick_rc();
        rc.max_warmup_ticks = 900;
        run(&mut e, &rc).ops_per_sec
    };
    let colloid = {
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        );
        run(&mut e, &quick_rc()).ops_per_sec
    };
    assert!(
        colloid > vanilla * 1.25,
        "Colloid should clearly win at 3x: {:.1}M vs {:.1}M ops/s",
        colloid / 1e6,
        vanilla / 1e6
    );
}

#[test]
fn colloid_matches_vanilla_without_contention() {
    let scenario = GupsScenario::intensity(0);
    let vanilla = {
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: false,
            },
        );
        run(&mut e, &quick_rc()).ops_per_sec
    };
    let colloid = {
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        );
        run(&mut e, &quick_rc()).ops_per_sec
    };
    let ratio = colloid / vanilla;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "at 0x Colloid must match vanilla, ratio = {ratio:.2}"
    );
}

#[test]
fn best_case_split_moves_out_with_contention() {
    let rc = RunConfig::static_placement();
    let at0 = best_case_over(&GupsScenario::intensity(0), [0.0, 0.5, 1.0], &rc);
    let at3 = best_case_over(&GupsScenario::intensity(3), [0.0, 0.5, 1.0], &rc);
    assert!(
        at0.best_fraction() > at3.best_fraction(),
        "the optimal hot share in the default tier must fall with contention: \
         {} at 0x vs {} at 3x",
        at0.best_fraction(),
        at3.best_fraction()
    );
    assert_eq!(at3.best_fraction(), 0.0, "at 3x the hot set belongs in alt");
}

#[test]
fn colloid_balances_tier_latencies() {
    let scenario = GupsScenario::intensity(1);
    let mut e = build_gups(
        &scenario,
        Policy::System {
            kind: SystemKind::Memtis,
            colloid: true,
        },
    );
    let r = run(&mut e, &quick_rc());
    let l_d = r.l_default_ns.expect("default busy");
    let l_a = r.l_alternate_ns.expect("alternate busy");
    let gap = (l_d - l_a).abs() / l_d.max(l_a);
    assert!(
        gap < 0.35,
        "Colloid should roughly balance latencies at 1x: L_D={l_d:.0} L_A={l_a:.0}"
    );
}

#[test]
fn hot_set_change_recovers() {
    // Figure 9 left column: the hot set jumps; throughput dips and comes
    // back.
    let tick = SimTime::from_us(100.0);
    let mut scenario = GupsScenario::intensity(0);
    scenario.phases = vec![(tick * 250, 0)];
    let mut e = build_gups(
        &scenario,
        Policy::System {
            kind: SystemKind::Hemem,
            colloid: true,
        },
    );
    let r = run(&mut e, &RunConfig::timeline(700));
    let mean = |s: &[experiments::TickSample]| {
        s.iter().map(|x| x.ops_per_sec).sum::<f64>() / s.len() as f64
    };
    let before = mean(&r.series[200..250]);
    let dip = mean(&r.series[255..285]);
    let after = mean(&r.series[640..700]);
    assert!(dip < before * 0.95, "the jump must dent throughput");
    assert!(
        after > before * 0.9,
        "throughput must recover: before {:.1}M, after {:.1}M",
        before / 1e6,
        after / 1e6
    );
}

#[test]
fn contention_storm_adaptation() {
    // Figure 9 right column: antagonist switches on; Colloid must end up
    // above the contention-oblivious baseline.
    let tick = SimTime::from_us(100.0);
    let run_one = |colloid: bool| {
        let mut scenario = GupsScenario::intensity(0);
        scenario.antagonist_change = Some((tick * 200, 15));
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid,
            },
        );
        let r = run(&mut e, &RunConfig::timeline(800));
        r.series[740..800]
            .iter()
            .map(|s| s.ops_per_sec)
            .sum::<f64>()
            / 60.0
    };
    let vanilla = run_one(false);
    let colloid = run_one(true);
    assert!(
        colloid > vanilla * 1.2,
        "after the storm Colloid must adapt: {:.1}M vs {:.1}M",
        colloid / 1e6,
        vanilla / 1e6
    );
}

#[test]
fn runs_are_deterministic() {
    let scenario = GupsScenario::intensity(1);
    let go = || {
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        );
        let rc = RunConfig {
            min_warmup_ticks: 50,
            max_warmup_ticks: 50,
            measure_ticks: 50,
            window: 25,
            tolerance: 0.0,
            collect_series: false,
        };
        let r = run(&mut e, &rc);
        (r.ops_per_sec, r.bytes_by_tier_class)
    };
    let a = go();
    let b = go();
    assert_eq!(a.0, b.0, "same seed must give bit-identical throughput");
    assert_eq!(a.1, b.1, "and identical byte counters");
}

#[test]
fn static_placement_never_migrates() {
    let scenario = GupsScenario::intensity(1);
    let mut e = build_gups(
        &scenario,
        Policy::Static {
            hot_default_fraction: 0.5,
        },
    );
    let r = run(&mut e, &RunConfig::static_placement());
    assert_eq!(e.machine.migrated_pages(), 0);
    let mig = memsim::TrafficClass::Migration.index();
    assert_eq!(r.bytes_by_tier_class[0][mig], 0);
    assert_eq!(r.bytes_by_tier_class[1][mig], 0);
}

#[test]
fn antagonist_stays_pinned_under_every_system() {
    for kind in SystemKind::ALL {
        let scenario = GupsScenario::intensity(3);
        let mut e = build_gups(
            &scenario,
            Policy::System {
                kind,
                colloid: true,
            },
        );
        let rc = RunConfig {
            min_warmup_ticks: 100,
            max_warmup_ticks: 100,
            measure_ticks: 20,
            window: 50,
            tolerance: 0.0,
            collect_series: false,
        };
        let _ = run(&mut e, &rc);
        for vpn in 0..128 {
            assert_eq!(
                e.machine.tier_of(vpn),
                Some(TierId::DEFAULT),
                "{kind:?} moved pinned antagonist page {vpn}"
            );
        }
    }
}
