//! Contention storm: a noisy neighbour switches on mid-run.
//!
//! Reproduces the paper's Figure 9 (right column) scenario interactively:
//! GUPS runs alone, then 15 antagonist cores start hammering the default
//! tier. A contention-oblivious system (vanilla HeMem) stays at its
//! degraded throughput; HeMem+Colloid detects the latency imbalance,
//! migrates the hot set to the alternate tier, and recovers.
//!
//! ```text
//! cargo run --release --example contention_storm
//! ```

use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use simkit::SimTime;
use tiersys::SystemKind;

fn main() {
    let tick = SimTime::from_us(100.0);
    let pre_ticks = 250usize;
    let post_ticks = 350usize;

    for colloid in [false, true] {
        let name = if colloid { "HeMem+Colloid" } else { "HeMem" };
        println!("==> {name}: antagonist switches on at t = 25 ms");

        let mut scenario = GupsScenario::intensity(0);
        scenario.antagonist_change = Some((tick * pre_ticks as u64, 15));
        let mut exp = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid,
            },
        );
        let result = run(&mut exp, &RunConfig::timeline(pre_ticks + post_ticks));

        // Print a compact timeline: mean throughput per 3 ms bucket.
        let bucket = 30;
        for chunk in result.series.chunks(bucket) {
            let t_ms = chunk[0].t.as_ns() / 1e6;
            let mops = chunk.iter().map(|s| s.ops_per_sec).sum::<f64>() / chunk.len() as f64 / 1e6;
            let bar = "#".repeat((mops / 12.0) as usize);
            println!("    t={t_ms:5.1}ms {mops:7.1} Mops/s {bar}");
        }
        let before = &result.series[pre_ticks - bucket..pre_ticks];
        let after = &result.series[result.series.len() - bucket..];
        let mean = |s: &[experiments::TickSample]| {
            s.iter().map(|x| x.ops_per_sec).sum::<f64>() / s.len() as f64 / 1e6
        };
        println!(
            "    before storm: {:.1} Mops/s | after storm (steady): {:.1} Mops/s\n",
            mean(before),
            mean(after)
        );
    }
}
