//! Quickstart: build the paper's two-tier machine, run GUPS under
//! HeMem+Colloid, and watch the tiers' access latencies balance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

fn main() {
    // The paper's §2.1 GUPS setup at 2x memory interconnect contention:
    // 15 application cores, 10 antagonist cores hammering the default tier.
    let scenario = GupsScenario::intensity(2);

    for (label, policy) in [
        (
            "HeMem (packs hottest pages into the default tier)",
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: false,
            },
        ),
        (
            "HeMem+Colloid (balances access latencies)",
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        ),
    ] {
        println!("==> {label}");
        let mut exp = build_gups(&scenario, policy);
        let result = run(&mut exp, &RunConfig::steady_state());
        println!(
            "    GUPS throughput : {:.1} Mops/s (converged after {} quanta)",
            result.ops_per_sec / 1e6,
            result.warmup_ticks_used
        );
        println!(
            "    tier latencies  : default {:.0} ns vs alternate {:.0} ns",
            result.l_default_ns.unwrap_or(f64::NAN),
            result.l_alternate_ns.unwrap_or(f64::NAN)
        );
        println!(
            "    placement       : {:.0}% of GUPS traffic served by the default tier\n",
            result.default_tier_app_share() * 100.0
        );
    }
    println!("Colloid's principle: when the default tier's loaded latency exceeds the");
    println!("alternate tier's, hot pages belong in the alternate tier — packing them");
    println!("into the \"fast\" tier only makes it slower.");
}
