//! Bring your own workload: implement [`memsim::AccessStream`] and measure
//! how Colloid places it.
//!
//! The example models a log-structured store: a sequential append stream
//! (the log) plus Zipf-skewed random reads over the whole store. It runs
//! the workload under MEMTIS+Colloid and prints where the traffic ends up.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use memsim::{
    AccessStream, CoreConfig, Machine, MachineConfig, ObjectAccess, TierId, TrafficClass,
    LINE_SIZE, PAGE_SIZE,
};
use rand::rngs::SmallRng;
use simkit::rng::Zipf;
use simkit::SimTime;
use tiersys::memtis::{Memtis, MemtisConfig};
use tiersys::{ColloidParams, SystemParams, TieringSystem};

/// A log-structured store: appends go to the log head (sequential writes),
/// reads are Zipf-skewed over the full store.
struct LogStore {
    base_vpn: u64,
    store_pages: u64,
    zipf: Zipf,
    append_cursor: u64,
    next_is_append: bool,
}

impl LogStore {
    fn new(base_vpn: u64, store_pages: u64) -> Self {
        LogStore {
            base_vpn,
            store_pages,
            // Recently appended records are the most read (rank 0 hottest
            // near the head).
            zipf: Zipf::new(store_pages * 8, 0.9),
            append_cursor: 0,
            next_is_append: false,
        }
    }
}

impl AccessStream for LogStore {
    fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let store_bytes = self.store_pages * PAGE_SIZE;
        self.next_is_append = !self.next_is_append;
        if self.next_is_append {
            // 512 B sequential append at the log head.
            let vaddr = self.base_vpn * PAGE_SIZE + self.append_cursor;
            self.append_cursor = (self.append_cursor + 512) % store_bytes;
            ObjectAccess {
                vaddr,
                size: 512,
                is_write: true,
                dependent: false,
                llc_hit_prob: 0.1,
            }
        } else {
            // Zipf-skewed 128 B record read; hot ranks sit just behind the
            // append cursor (recency skew).
            let rank = self.zipf.sample(rng);
            let offset_back = (rank + 1) * 512 % store_bytes;
            let vaddr = self.base_vpn * PAGE_SIZE
                + (self.append_cursor + store_bytes - offset_back) % store_bytes;
            ObjectAccess {
                vaddr: vaddr / LINE_SIZE * LINE_SIZE,
                size: 128,
                is_write: false,
                dependent: false,
                llc_hit_prob: 0.05,
            }
        }
    }
}

fn main() {
    let mut cfg = MachineConfig::icelake_two_tier();
    // A small default tier so placement decisions matter.
    cfg.tiers[0].capacity_bytes = 8 << 20;
    let mut machine = Machine::new(cfg);

    let store_pages = (24 << 20) / PAGE_SIZE; // 24 MB store
    let ws = 0..store_pages;
    let mut free = machine.free_pages(TierId::DEFAULT);
    for vpn in ws.clone() {
        if free > 0 {
            machine.place(vpn, TierId::DEFAULT);
            free -= 1;
        } else {
            machine.place(vpn, TierId::ALTERNATE);
        }
    }
    for _ in 0..12 {
        machine.add_core(
            Box::new(LogStore::new(0, store_pages)),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }

    let mut system = Memtis::new(
        SystemParams::new(vec![ws], Some(ColloidParams::default())),
        MemtisConfig::default(),
    );

    let tick = SimTime::from_us(100.0);
    println!("running a log-structured store under MEMTIS+Colloid ...");
    for tick_no in 0..300 {
        let report = machine.run_tick(tick);
        system.on_tick(&mut machine, &report);
        if tick_no % 60 == 59 {
            let app = TrafficClass::App.index();
            let d = report.tiers[0].bytes_by_class[app] as f64;
            let a = report.tiers[1].bytes_by_class[app] as f64;
            println!(
                "t = {:4.1} ms | default tier serves {:4.1}% of traffic | L_D {:5.0} ns, L_A {:5.0} ns | {:5.1} Mops/s",
                machine.now().as_ns() / 1e6,
                d / (d + a).max(1.0) * 100.0,
                report.littles_latency_ns(TierId::DEFAULT).unwrap_or(f64::NAN),
                report.littles_latency_ns(TierId::ALTERNATE).unwrap_or(f64::NAN),
                report.app_ops_per_sec() / 1e6
            );
        }
    }
    let stats = system.stats();
    println!(
        "\nMEMTIS stats: promoted {} pages, demoted {}, split {} hugepage regions, PEBS period {}",
        stats.promoted, stats.demoted, stats.splits, stats.pebs_period
    );
    println!("The hot log head lives in the default tier; the cold tail spills to the");
    println!("alternate tier — and under contention Colloid would rebalance them.");
}
