//! Three memory tiers: local DDR + CXL-attached + far memory.
//!
//! The paper's principle "naturally generalizes to tiered memory
//! architectures with more than two tiers" (§3.1). This example builds a
//! three-tier machine, attaches a small policy written against
//! [`colloid::multitier::MultiTierBalancer`], and shows the three tiers'
//! access latencies converging towards each other under load.
//!
//! ```text
//! cargo run --release --example three_tiers
//! ```

use colloid::multitier::MultiTierBalancer;
use colloid::{Mode, TierMeasurement};
use memsim::{
    CoreConfig, DramConfig, LinkConfig, Machine, MachineConfig, TickReport, TierConfig, TierId,
    TrafficClass, PAGE_SIZE,
};
use simkit::SimTime;
use tierctl::{FreqTracker, MigrationBudget, TierBins};
use workloads::{GupsConfig, GupsStream};

/// A minimal three-tier balancing policy: frequency-binned page lists (as
/// in the HeMem+Colloid integration) driven by the pairwise multi-tier
/// balancer.
struct ThreeTierColloid {
    balancer: MultiTierBalancer,
    tracker: FreqTracker,
    bins: TierBins,
    budget: MigrationBudget,
}

impl ThreeTierColloid {
    /// Demotes one cold page from `tier` to the next tier down to free a
    /// frame, cascading further down if the next tier is itself full;
    /// returns whether a frame was freed.
    fn make_room(&mut self, machine: &mut Machine, tier: TierId) -> bool {
        let below = TierId(tier.0 + 1);
        if below.index() >= 3 {
            return false;
        }
        if machine.free_pages(below) == 0 && !self.make_room(machine, below) {
            return false;
        }
        for bin in 0..self.bins.n_bins() {
            for vpn in self.bins.pages(tier, bin).to_vec() {
                if !self.budget.try_take_page() {
                    return false;
                }
                if machine.enqueue_migration(vpn, below).is_ok() {
                    self.bins.move_tier(vpn, below);
                    return true;
                }
            }
        }
        false
    }

    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport) {
        for s in &report.pebs {
            if self.bins.tier_of(s.vpn).is_some() {
                self.tracker.record(s.vpn);
                self.bins.update_count(s.vpn, self.tracker.count(s.vpn));
            }
        }
        self.budget.refill();
        let window: Vec<TierMeasurement> = report
            .tiers
            .iter()
            .map(|t| TierMeasurement {
                occupancy: t.occupancy,
                rate_per_ns: t.rate_per_ns,
            })
            .collect();
        for d in self.balancer.on_quantum(&window) {
            let (from, to) = match d.mode {
                Mode::Promote => (TierId(d.lower as u8), TierId(d.upper as u8)),
                Mode::Demote => (TierId(d.upper as u8), TierId(d.lower as u8)),
            };
            let mut rem_p = d.delta_p;
            let mut rem_bytes = d.byte_limit;
            for bin in (0..self.bins.n_bins()).rev() {
                for vpn in self.bins.pages(from, bin).to_vec() {
                    if rem_bytes < PAGE_SIZE {
                        return;
                    }
                    let prob = self.tracker.access_prob(vpn);
                    if prob <= 0.0 || prob > rem_p {
                        continue;
                    }
                    if machine.free_pages(to) == 0 && !self.make_room(machine, to) {
                        return;
                    }
                    if !self.budget.try_take_page() {
                        return;
                    }
                    if machine.enqueue_migration(vpn, to).is_ok() {
                        self.bins.move_tier(vpn, to);
                        rem_p -= prob;
                        rem_bytes -= PAGE_SIZE;
                    }
                }
            }
        }
    }
}

fn main() {
    // Tier 0: local DDR (16 MB). Tier 1: CXL-attached (32 MB, ~140 ns).
    // Tier 2: far memory (64 MB, ~250 ns).
    let ddr = DramConfig::ddr4_3200_8ch();
    let tiers = vec![
        TierConfig {
            name: "local-ddr".into(),
            capacity_bytes: 16 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: ddr.clone(),
            link: None,
        },
        TierConfig {
            name: "cxl".into(),
            capacity_bytes: 32 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: ddr.clone(),
            link: Some(LinkConfig {
                propagation: SimTime::from_ns(34.0),
                t_serialize: SimTime::from_ns(64.0 / 40.0), // 40 GB/s CXL
            }),
        },
        TierConfig {
            name: "far".into(),
            capacity_bytes: 64 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: ddr,
            link: Some(LinkConfig {
                propagation: SimTime::from_ns(89.0),
                t_serialize: SimTime::from_ns(64.0 / 20.0), // 20 GB/s
            }),
        },
    ];
    let unloaded: Vec<f64> = tiers.iter().map(|t| t.unloaded_latency().as_ns()).collect();
    println!(
        "tiers: ddr {:.0} ns | cxl {:.0} ns | far {:.0} ns (unloaded)",
        unloaded[0], unloaded[1], unloaded[2]
    );

    let cfg = MachineConfig {
        tiers,
        virtual_pages: (128 << 20) / PAGE_SIZE,
        ..MachineConfig::icelake_two_tier()
    };
    let mut machine = Machine::new(cfg);

    // A 48 MB working set with a 12 MB hot region, first-touch allocated.
    let mut gups = GupsConfig::paper_default(0);
    gups.ws_pages = (48 << 20) / PAGE_SIZE;
    gups.hot_pages = (12 << 20) / PAGE_SIZE;
    gups.hot_offset = (20 << 20) / PAGE_SIZE; // hot starts outside tier 0
    let mut free0 = machine.free_pages(TierId(0));
    let mut free1 = machine.free_pages(TierId(1));
    for vpn in gups.ws_range() {
        if free0 > 0 {
            machine.place(vpn, TierId(0));
            free0 -= 1;
        } else if free1 > 0 {
            machine.place(vpn, TierId(1));
            free1 -= 1;
        } else {
            machine.place(vpn, TierId(2));
        }
    }
    for _ in 0..20 {
        machine.add_core(
            Box::new(GupsStream::new(gups.clone()).unwrap()),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }

    let tick = SimTime::from_us(100.0);
    let mut bins = TierBins::new(3, 5, 16);
    for vpn in gups.ws_range() {
        bins.insert(vpn, machine.tier_of(vpn).unwrap(), 0);
    }
    let mut policy = ThreeTierColloid {
        balancer: MultiTierBalancer::new(unloaded, 0.01, 0.05, 0.3, 240_000, tick.as_ns()),
        tracker: FreqTracker::new(16),
        bins,
        budget: MigrationBudget::new(240_000),
    };

    for tick_no in 0..400 {
        let report = machine.run_tick(tick);
        policy.on_tick(&mut machine, &report);
        if tick_no % 50 == 49 {
            let l: Vec<String> = (0..3)
                .map(|i| match report.littles_latency_ns(TierId(i as u8)) {
                    Some(l) => format!("{l:6.0}"),
                    None => "  idle".into(),
                })
                .collect();
            println!(
                "t = {:5.1} ms | latencies ns: ddr {} cxl {} far {} | {:5.1} Mops/s",
                machine.now().as_ns() / 1e6,
                l[0],
                l[1],
                l[2],
                report.app_ops_per_sec() / 1e6
            );
        }
    }
    println!("\nPairwise balancing pushed the hot set into DDR and spilled cold pages");
    println!("down to far memory. DDR stays fastest because this load cannot saturate");
    println!("it -- the multi-tier equilibrium of paper 3.1: promote towards the");
    println!("fastest tier until its loaded latency catches up with the others'.");
}
